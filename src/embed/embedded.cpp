#include "embed/embedded.hpp"

#include <unordered_set>

namespace namecoh {

std::string_view embed_rule_name(EmbedRule rule) {
  switch (rule) {
    case EmbedRule::kActivityContext:
      return "R(activity)";
    case EmbedRule::kAlgolScope:
      return "R(file)";
  }
  return "?";
}

Result<EntityId> EmbeddedNameResolver::find_scope(
    EntityId containing_dir, const CompoundName& name) const {
  if (!graph_->is_context_object(containing_dir)) {
    return not_a_context_error("find_scope: containing_dir not a directory");
  }
  const Name& first = name.front();
  const Name parent = Name::parent();
  std::unordered_set<EntityId> visited;
  EntityId dir = containing_dir;
  while (visited.insert(dir).second) {
    const Context& ctx = graph_->context(dir);
    if (ctx.contains(first)) return dir;
    EntityId up = ctx(parent);
    if (!up.valid() || !graph_->is_context_object(up)) break;
    dir = up;  // root's ".." binds to itself, terminating via `visited`
  }
  return not_found_error("no ancestor of '" + graph_->label(containing_dir) +
                         "' binds '" + first.text() + "'");
}

Resolution EmbeddedNameResolver::resolve_algol(
    EntityId containing_dir, const CompoundName& name) const {
  auto scope = find_scope(containing_dir, name);
  if (!scope.is_ok()) {
    Resolution res;
    res.status = scope.status();
    return res;
  }
  return resolve_from(*graph_, scope.value(), name);
}

std::vector<EntityId> DocumentMeaning::denotation() const {
  std::vector<EntityId> out;
  out.reserve(refs.size());
  for (const ResolvedRef& ref : refs) {
    out.push_back(ref.status.is_ok() ? ref.target : EntityId::invalid());
  }
  return out;
}

bool DocumentMeaning::same_meaning(const DocumentMeaning& other) const {
  return fully_resolved() && other.fully_resolved() &&
         denotation() == other.denotation();
}

DocumentMeaning DocumentAssembler::assemble(
    EntityId root_file, EntityId containing_dir,
    const AssembleOptions& options) const {
  DocumentMeaning out;
  NAMECOH_CHECK(options.rule != EmbedRule::kActivityContext ||
                    options.reader_context != nullptr,
                "kActivityContext assembly needs a reader context");
  std::unordered_set<EntityId> in_progress;
  expand(root_file, containing_dir, options, 0, in_progress, out);
  return out;
}

void DocumentAssembler::expand(EntityId file, EntityId containing_dir,
                               const AssembleOptions& options,
                               std::size_t depth,
                               std::unordered_set<EntityId>& in_progress,
                               DocumentMeaning& out) const {
  if (!graph_->is_data_object(file)) return;
  if (depth > options.max_depth || out.parts.size() >= options.max_parts) {
    return;
  }
  if (!in_progress.insert(file).second) return;  // include cycle: cut it

  out.parts.push_back(file);
  out.text += graph_->data(file);

  for (const CompoundName& embedded : graph_->embedded_names(file)) {
    Resolution res;
    if (options.rule == EmbedRule::kAlgolScope) {
      res = resolver_.resolve_algol(containing_dir, embedded);
    } else {
      // R(a): a bare embedded name ("a/p") is interpreted the way Unix
      // readers interpret it — relative to the reader's working directory.
      const Name& first = embedded.front();
      if (first.is_root() || first.is_cwd()) {
        res = resolve(*graph_, *options.reader_context, embedded);
      } else {
        res = resolve(*graph_, *options.reader_context,
                      CompoundName{Name::cwd()}.append(embedded));
      }
    }
    ResolvedRef ref{file, embedded, res.status,
                    res.ok() ? res.entity : EntityId::invalid()};
    out.refs.push_back(ref);
    if (!res.ok()) {
      ++out.unresolved;
      continue;
    }
    if (graph_->is_data_object(res.entity)) {
      // The directory the included file was found in governs *its* embedded
      // names: the last context object on the resolution trail.
      EntityId child_dir =
          res.trail.empty() ? containing_dir : res.trail.back();
      expand(res.entity, child_dir, options, depth + 1, in_progress, out);
    }
  }
  in_progress.erase(file);
}

}  // namespace namecoh
