// Embedded names and structured objects (§4 case 3, §6 Example 2, Fig. 6).
//
// A structured object is a file whose payload refers to other files by
// embedded names (LaTeX \input, C #include, multi-file executables). Its
// *meaning* is determined by what the embedded names denote; the file is
// coherent across activities/sites when every embedded name denotes the
// same entity everywhere.
//
// Two resolution disciplines are implemented:
//
//   * activity-context (the common, incoherent one): each embedded name is
//     resolved in the *reader's* process context, rule R(a). Copy a
//     document tree to another machine, or read it from a different
//     process, and its meaning can change.
//
//   * Algol scope, rule R(file) (the paper's fix): an embedded name n1…nk
//     is resolved relative to the closest ancestor directory — walking up
//     ".." from the file's containing directory — that has a binding for
//     n1. Nested subtrees play the role of Algol's nested blocks (Fig. 6).
//     The subtree can be attached in several places, relocated, or copied
//     without changing the meaning of its embedded names.
//
// The containing directory of a file is taken from the resolution trail
// that reached it (a file hard-linked into several directories has a
// well-defined scope per access path), mirroring how a real system knows
// which directory it opened the file through.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/naming_graph.hpp"
#include "core/resolve.hpp"
#include "util/status.hpp"

namespace namecoh {

/// Algol-scope resolution of one embedded name.
class EmbeddedNameResolver {
 public:
  explicit EmbeddedNameResolver(const NamingGraph& graph) : graph_(&graph) {}

  /// Find the closest ancestor of `containing_dir` (inclusive) that binds
  /// the first component of `name`; kNotFound when the search exhausts the
  /// ancestor chain.
  [[nodiscard]] Result<EntityId> find_scope(EntityId containing_dir,
                                            const CompoundName& name) const;

  /// Full R(file) resolution: find_scope, then resolve `name` relative to
  /// the scope directory.
  [[nodiscard]] Resolution resolve_algol(EntityId containing_dir,
                                         const CompoundName& name) const;

 private:
  const NamingGraph* graph_;
};

/// How a document assembler resolves embedded names.
enum class EmbedRule : std::uint8_t {
  kActivityContext,  ///< R(a): in the reader's process context
  kAlgolScope,       ///< R(file): closest-ancestor scope of the file
};
std::string_view embed_rule_name(EmbedRule rule);

/// One resolved (or unresolved) embedded reference.
struct ResolvedRef {
  EntityId from_file;    ///< the file containing the embedded name
  CompoundName name;     ///< the embedded name as written
  Status status;         ///< resolution outcome
  EntityId target;       ///< valid iff status OK
};

/// The meaning of a structured object: every embedded reference in the
/// include closure, in deterministic (depth-first, in-file) order, plus the
/// concatenated text of all parts.
struct DocumentMeaning {
  std::vector<ResolvedRef> refs;
  std::vector<EntityId> parts;  ///< files in assembly order (root first)
  std::string text;             ///< concatenated payloads
  std::size_t unresolved = 0;

  [[nodiscard]] bool fully_resolved() const { return unresolved == 0; }

  /// The entity sequence denoted by the document's embedded names — the
  /// object of the coherence comparison.
  [[nodiscard]] std::vector<EntityId> denotation() const;

  /// Same meaning: identical denotation sequences and both fully resolved.
  [[nodiscard]] bool same_meaning(const DocumentMeaning& other) const;
};

struct AssembleOptions {
  EmbedRule rule = EmbedRule::kAlgolScope;
  /// Reader's process context; required for kActivityContext.
  const Context* reader_context = nullptr;
  std::size_t max_depth = 32;      ///< include-nesting limit
  std::size_t max_parts = 10000;   ///< total parts limit
};

/// Recursively expand a structured object from its root file.
/// `containing_dir` is the directory the root file was opened through.
class DocumentAssembler {
 public:
  explicit DocumentAssembler(const NamingGraph& graph)
      : graph_(&graph), resolver_(graph) {}

  [[nodiscard]] DocumentMeaning assemble(EntityId root_file,
                                         EntityId containing_dir,
                                         const AssembleOptions& options) const;

 private:
  void expand(EntityId file, EntityId containing_dir,
              const AssembleOptions& options, std::size_t depth,
              std::unordered_set<EntityId>& in_progress,
              DocumentMeaning& out) const;

  const NamingGraph* graph_;
  EmbeddedNameResolver resolver_;
};

}  // namespace namecoh
