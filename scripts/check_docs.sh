#!/usr/bin/env bash
# Documentation link-and-reference checker.
#
# Scans every tracked markdown file for
#   1. inline markdown links [text](target) — the target file must exist
#      (relative to the doc, or to the repo root as a fallback); anchors
#      and external URLs are skipped;
#   2. textual file references like docs/PROTOCOLS.md, DESIGN.md,
#      src/ns/name_service.*, tests/test_failover.cpp, scripts/foo.sh —
#      the named path must exist (a trailing .* matches any extension).
#
# Exits non-zero listing every dangling reference. Wired into
# scripts/run_sanitizers.sh so the doc tree is checked on every
# sanitizer run; cheap enough to run by hand any time:
#
#   scripts/check_docs.sh
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

# Markdown files: tracked ones if git is available, else a find. Files
# that intentionally reference past or external states are skipped:
# CHANGES.md and ISSUE.md describe history/plans (including files that no
# longer exist), SNIPPETS.md/PAPERS.md quote other repositories, and
# .claude/ is tooling config.
skip_doc() {
  case "$1" in
    CHANGES.md|ISSUE.md|SNIPPETS.md|PAPER.md|PAPERS.md|.claude/*) return 0 ;;
  esac
  return 1
}

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  mapfile -t all_docs < <(git ls-files -c -o --exclude-standard '*.md')
else
  mapfile -t all_docs < <(find . -name '*.md' -not -path './build*' | sed 's|^\./||')
fi
docs=()
for d in "${all_docs[@]}"; do
  skip_doc "$d" || docs+=("$d")
done

failures=0

fail() {
  echo "dangling: $1 -> $2" >&2
  failures=$((failures + 1))
}

# Does a referenced path exist? Accepts globs (src/ns/name_service.*,
# bench/*) and extensionless module references (src/fs/snapshot → any
# snapshot.* file).
exists() {
  local ref="$1"
  [[ -e "$ref" ]] && return 0
  if [[ "$ref" == *'*'* ]]; then
    compgen -G "$ref" >/dev/null && return 0
  fi
  compgen -G "${ref}.*" >/dev/null && return 0
  return 1
}

for doc in "${docs[@]}"; do
  dir="$(dirname "$doc")"

  # 1. Inline markdown links: [text](target). One link per line is enough
  #    for this tree; anchors (#...) and URLs (scheme://...) are skipped.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      \#*|*://*|mailto:*) continue ;;
    esac
    target="${target%%#*}"             # strip fragment
    if ! { exists "$dir/$target" || exists "$target"; }; then
      fail "$doc" "($target)"
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" 2>/dev/null \
             | sed 's/^\[[^]]*\](\([^)]*\))$/\1/')

  # 2. Textual path references. Conservative pattern: a word that starts
  #    with a known top-level directory or is a top-level *.md name.
  while IFS= read -r ref; do
    [[ -z "$ref" ]] && continue
    ref="${ref%%#*}"
    if ! { exists "$ref" || exists "$dir/$ref"; }; then
      fail "$doc" "$ref"
    fi
  done < <(grep -oP '(?<![A-Za-z0-9_./-])(docs|src|tests|bench|examples|scripts)/[A-Za-z0-9_./*-]+|(?<![A-Za-z0-9_./-])[A-Z][A-Z0-9_]*\.md\b' "$doc" 2>/dev/null \
             | sed 's/[.,;:)]*$//' | sort -u)
done

if [[ "$failures" -gt 0 ]]; then
  echo "check_docs: $failures dangling reference(s)" >&2
  exit 1
fi
echo "check_docs: OK (${#docs[@]} markdown files, no dangling references)"
