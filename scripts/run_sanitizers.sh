#!/usr/bin/env bash
# Build the whole tree with ASan + UBSan and run the test suite under it,
# then rebuild the concurrency-sensitive tests with ThreadSanitizer and run
# those (the execution-policy seam: worker pool, sharded interner, metric
# shards, batch engine — docs/PARALLELISM.md).
#
# Usage: scripts/run_sanitizers.sh [asan-build-dir] [tsan-build-dir]
set -euo pipefail
BUILD="${1:-build-asan}"
TSAN_BUILD="${2:-build-tsan}"

# Cheap static pass first: the documentation link/reference checker.
"$(dirname "${BASH_SOURCE[0]}")/check_docs.sh"

cmake -B "$BUILD" -S . -DNAMECOH_SANITIZE=asan -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# Trace-export smoke under the sanitized build: catches UB in the tracer's
# ring and the hand-rolled JSON emitters, and checks the artifact parses.
"$(dirname "${BASH_SOURCE[0]}")/export_trace.sh" "$BUILD"

# Async-engine smoke under the sanitized build: the X5 experiment drives
# 64-wide pipelined and coalesced bursts through the resolver state
# machines — the heaviest exerciser of the engine's lifetime rules
# (heap-pinned requests, handle settlement, coalesced waiter lists).
"$BUILD/bench/bench_x5_pipeline" --json > /dev/null

# Sharded-fabric smoke under the sanitized build, at the reduced default
# scale: delegation installs, v5 glue tails on the wire, shard-routed
# failover, and the anti-entropy epoch gate (the two regression tests ride
# in test_name_service above; this drives the full cross-shard path).
"$BUILD/bench/bench_x7_shard" --benchmark_filter='BM_(ShardedResolve|GlueTailParse)' > /dev/null

# Rebalancing smoke under the sanitized build, at the reduced default
# scale: the full live-migration path — intake pushes, catch-up epoch
# diffs, the cutover's bulk slot rewrite, forwarding-tombstone hits —
# plus the planner reading live metrics (docs/REBALANCING.md). The edge
# cases ride in test_rebalance above; this drives migration and
# foreground traffic through one interleaved run.
"$BUILD/bench/bench_x8_rebalance" --scale small > /dev/null

# Churn smoke under the sanitized build, at the reduced default scale:
# rolling restarts (graceful leave → down → rejoin), rolling renumbering
# with rename tombstones, a partition window, and the client's
# route-healing path, all under closed-loop load (docs/MEMBERSHIP.md).
# The lifecycle edge cases ride in test_membership above; this drives
# the full churn timeline end to end.
"$BUILD/bench/bench_x9_churn" --scale small > /dev/null

# TSan pass over the tests that exercise real threads. ASan and TSan cannot
# share a build, so this is a separate tree; only the concurrency suites
# run (the rest of the suite is single-threaded and already covered above).
# test_rebalance and test_membership ride along: migration and membership
# handoffs interleave snapshot pushes with foreground traffic through the
# shared metrics registry, the path most likely to grow a cross-thread
# reader later.
cmake -B "$TSAN_BUILD" -S . -DNAMECOH_SANITIZE=tsan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD" -j "$(nproc)" \
  --target test_parallel_exec test_interner test_util test_obs \
  test_rebalance test_membership
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "$TSAN_BUILD" --output-on-failure \
  -R 'test_parallel_exec|test_interner|test_util|test_obs|test_rebalance|test_membership'
