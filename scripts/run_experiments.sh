#!/usr/bin/env bash
# Regenerate every experiment table and the microbenchmarks.
#
# Usage: scripts/run_experiments.sh [build-dir] [out-file]
set -euo pipefail
BUILD="${1:-build}"
OUT="${2:-bench_output.txt}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

: > "$OUT"
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$OUT"
  "$b" | tee -a "$OUT"
done
echo "wrote $OUT"
