#!/usr/bin/env bash
# Run the benchmark binaries in machine-readable mode and drop one
# BENCH_<name>.json artifact per binary at the repo root (google-benchmark
# JSON: context + per-benchmark real/cpu times and counters).
#
# Usage: scripts/run_benchmarks.sh [build-dir] [out-dir]
# Defaults: build-dir=build, out-dir=repo root. Binaries are built first if
# the build directory is already configured.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found; run cmake -B build -S . first" >&2
  exit 1
fi
cmake --build "$build_dir" -j >/dev/null

for bench in bench_core_resolution bench_ns_cache bench_x4_failover bench_x5_pipeline bench_x6_coherence bench_x7_shard bench_x8_rebalance bench_x9_churn; do
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin missing (benchmark target not built?)" >&2
    exit 1
  fi
  out="$out_dir/BENCH_${bench#bench_}.json"
  echo "running $bench -> $out" >&2
  if [[ "$bench" == bench_core_resolution ]]; then
    # The execution-policy seam benchmarks need a worker count; default to
    # the machine width, overridable for CI runners of known size.
    "$bin" --threads "${NAMECOH_BENCH_THREADS:-$(nproc)}" --json > "$out"
  else
    "$bin" --json > "$out"
  fi
done

# Metrics-registry artifact: the unified counters/gauges/histograms from a
# traced lossy run, exported as one JSON object (see docs/OBSERVABILITY.md).
metrics_out="$out_dir/BENCH_ns_cache_metrics.json"
echo "running bench_ns_cache --metrics-out -> $metrics_out" >&2
"$build_dir/bench/bench_ns_cache" --metrics-out="$metrics_out" >/dev/null
