#!/usr/bin/env bash
# Smoke test for the chrome-trace exporter: run bench_ns_cache's traced
# lossy scenario, write a trace_event JSON file, and validate it parses.
# The artifact loads in Perfetto / chrome://tracing as-is.
#
# Usage: scripts/export_trace.sh [build-dir] [out-file]
# Defaults: build-dir=build, out-file=<build-dir>/trace_ns_cache.json
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_file="${2:-$build_dir/trace_ns_cache.json}"

bin="$build_dir/bench/bench_ns_cache"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin missing; build first (cmake --build $build_dir -j)" >&2
  exit 1
fi

"$bin" --trace-export="$out_file"

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$out_file" >/dev/null
  echo "ok: $out_file is valid JSON" >&2
else
  echo "warning: python3 unavailable, skipping JSON validation" >&2
fi

# Structural sanity: the chrome-trace envelope and at least one span slice.
grep -q '"traceEvents"' "$out_file"
grep -q '"ph":"X"' "$out_file"
echo "ok: $out_file contains trace events" >&2
