// Dynamic membership tests (docs/MEMBERSHIP.md): the MembershipDirectory
// lifecycle state machine, graceful leave with live subtree handoff (zero
// lost lookups under closed-loop load), rejoin handback via ring
// stability, crash-leave re-delegation, the §6 regression — machine
// renumbering must not break partially-qualified (name-closed) resolution
// while it visibly kills fully-qualified pids — rename-tombstone windows,
// and same-seed determinism of a full churn scenario. Clusters are wired
// through ScenarioBuilder, which these tests double as coverage for.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph_ops.hpp"
#include "ns/membership.hpp"
#include "ns/name_service.hpp"
#include "workload/parallel.hpp"
#include "workload/scenario.hpp"

namespace namecoh {
namespace {

/// A root whose children c0..c{fanout-1} are delegable subtrees; built
/// once per test. Small enough that handoffs finish in a few thousand
/// ticks with the fast options below.
struct Fabric {
  NamingGraph graph;
  EntityId root;
  TreeBuildResult tree;
  std::vector<EntityId> subtrees;
  EntityId leaf;  ///< data object at c0/c0/f

  explicit Fabric(std::size_t fanout = 4, std::size_t depth = 3) {
    root = graph.add_context_object("root");
    tree = build_context_tree(graph, root, fanout, depth);
    subtrees = tree.levels[1];
    leaf = graph.add_data_object("leaf");
    EXPECT_TRUE(graph.bind(tree.levels[2][0], Name("f"), leaf).is_ok());
  }
};

MembershipOptions fast_membership() {
  MembershipOptions options;
  options.handoff.copy_batch = 4;
  options.handoff.copy_interval = 10;
  options.handoff.settle_delay = 50;
  options.handoff.forward_window = 500;
  options.rename_window = 10000;
  return options;
}

std::unique_ptr<Cluster> make_cluster(const Fabric& fabric,
                                      std::size_t shards,
                                      ResolverClientConfig cfg = {}) {
  cfg.shard_routing = true;
  return ScenarioBuilder(fabric.graph)
      .shards(shards)
      .delegate_children_by_hash(fabric.root)
      .delegate(fabric.root, 0)
      .with_membership(fast_membership())
      .client_config(cfg)
      .client_label("t")
      .build();
}

// --- Lifecycle state machine -------------------------------------------------

TEST(MembershipLifecycle, TracksStatesAndIncarnations) {
  Fabric fabric;
  auto cluster = make_cluster(fabric, 2);
  MembershipDirectory& members = *cluster->membership();
  const MachineId m0 = cluster->machine(0);

  // The builder announced every machine: shard servers and the client.
  EXPECT_EQ(members.state(m0), MemberState::kUp);
  EXPECT_EQ(members.incarnation(m0), 1u);
  EXPECT_EQ(members.shard_of(m0), ShardId{0});
  EXPECT_EQ(members.state(cluster->client_machine()), MemberState::kUp);
  EXPECT_EQ(members.up_count(), 3u);  // 2 shards + 1 client machine

  // Transitions that make no sense are refused without side effects.
  EXPECT_FALSE(members.announce(m0).is_ok());
  EXPECT_FALSE(members.rejoin(m0).is_ok());
  EXPECT_FALSE(members.graceful_leave(MachineId::invalid()).is_ok());

  bool down = false;
  ASSERT_TRUE(members.graceful_leave(m0, [&] { down = true; }).is_ok());
  members.run_handoffs_to_completion();
  EXPECT_TRUE(down);
  EXPECT_EQ(members.state(m0), MemberState::kDown);
  EXPECT_EQ(members.up_count(), 2u);
  EXPECT_FALSE(members.graceful_leave(m0).is_ok());
  EXPECT_FALSE(members.rename(m0).is_ok());  // rename needs a live member

  ASSERT_TRUE(members.rejoin(m0).is_ok());
  members.run_handoffs_to_completion();
  EXPECT_EQ(members.state(m0), MemberState::kUp);
  EXPECT_EQ(members.incarnation(m0), 2u);  // bumped by the rejoin
}

// --- Graceful leave ----------------------------------------------------------

TEST(MembershipHandoff, GracefulLeaveMigratesSubtreesLive) {
  Fabric fabric;
  auto cluster = make_cluster(fabric, 3);
  MembershipDirectory& members = *cluster->membership();
  // Machine 1 leaves: only ring-managed subtrees are handed off, and the
  // explicitly delegated root region stays pinned to shard 0 — so the
  // leaver must not be shard 0's only machine or root-start resolution
  // would have no server.
  const MachineId leaver = cluster->machine(1);

  std::vector<EntityId> owned;
  for (EntityId t : fabric.subtrees) {
    if (cluster->homes().shard_of(t) == ShardId{1}) owned.push_back(t);
  }
  ASSERT_FALSE(owned.empty());

  ASSERT_TRUE(members.graceful_leave(leaver).is_ok());
  members.run_handoffs_to_completion();

  // Every subtree the leaver's shard owned moved to a survivor — through
  // the driver (live), not by direct cutover — and its server is gone.
  for (EntityId t : owned) {
    EXPECT_NE(cluster->homes().shard_of(t), ShardId{1});
  }
  EXPECT_GE(members.handoffs().size(), owned.size());
  for (const HandoffRecord& record : members.handoffs()) {
    EXPECT_TRUE(record.live);
    EXPECT_EQ(record.from, ShardId{1});
  }
  EXPECT_FALSE(cluster->service().server_on(leaver).is_ok());

  // Resolution through the moved subtrees keeps working.
  Result<EntityId> hit =
      cluster->client().resolve(fabric.root, CompoundName::relative("c0/c0/f"));
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value(), fabric.leaf);
}

TEST(MembershipHandoff, GracefulLeaveLosesNoLookupsUnderLoad) {
  Fabric fabric;
  ResolverClientConfig cfg;
  cfg.cache_ttl = 0;  // every lookup pays the wire mid-handoff
  cfg.retry.retries = 2;
  cfg.retry.request_timeout = 5000;
  auto cluster = make_cluster(fabric, 3, cfg);
  MembershipDirectory& members = *cluster->membership();

  std::vector<ParallelQuery> queries;
  for (EntityId t : fabric.subtrees) {
    queries.push_back(ParallelQuery{t, CompoundName::relative("c0/c1")});
    queries.push_back(ParallelQuery{t, CompoundName::relative("c1/c0")});
  }
  // One machine leaves and later rejoins while the load runs; the script
  // only schedules, run_parallel drives.
  RollingRestart restart(cluster->sim(), members,
                         {cluster->machine(1)},
                         RollingRestartSpec{/*start=*/200, /*downtime=*/1500,
                                            /*gap=*/300});
  restart.start();

  ParallelSpec spec;
  spec.activities = 16;
  spec.total_resolutions = 600;
  spec.seed = 5;
  ParallelOutcome out =
      run_parallel(cluster->sim(), cluster->client(), queries, spec);
  cluster->sim().run_while([&] { return !restart.done(); });

  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.failed, 0u);
  EXPECT_TRUE(restart.done());
  EXPECT_EQ(members.state(cluster->machine(1)), MemberState::kUp);
}

TEST(MembershipHandoff, RejoinTakesItsRingShareBack) {
  Fabric fabric;
  auto cluster = make_cluster(fabric, 3);
  MembershipDirectory& members = *cluster->membership();

  std::vector<ShardId> before;
  for (EntityId t : fabric.subtrees) {
    before.push_back(cluster->homes().shard_of(t));
  }
  ASSERT_TRUE(members.graceful_leave(cluster->machine(1)).is_ok());
  members.run_handoffs_to_completion();
  ASSERT_TRUE(members.rejoin(cluster->machine(1)).is_ok());
  members.run_handoffs_to_completion();

  // Ring stability: the rejoined shard gets exactly its old subtrees back,
  // so the placement returns to the pre-leave assignment.
  for (std::size_t i = 0; i < fabric.subtrees.size(); ++i) {
    EXPECT_EQ(cluster->homes().shard_of(fabric.subtrees[i]), before[i]);
  }
}

// --- Crash-leave -------------------------------------------------------------

TEST(MembershipCrash, CrashLeaveRedelegatesOrphanedSubtrees) {
  Fabric fabric;
  auto cluster = make_cluster(fabric, 3);
  MembershipDirectory& members = *cluster->membership();
  const MachineId victim = cluster->machine(2);

  std::vector<EntityId> owned;
  for (EntityId t : fabric.subtrees) {
    if (cluster->homes().shard_of(t) == ShardId{2}) owned.push_back(t);
  }
  ASSERT_FALSE(owned.empty());

  ASSERT_TRUE(members.crash_leave(victim).is_ok());
  EXPECT_EQ(members.state(victim), MemberState::kDown);
  EXPECT_FALSE(members.crash_leave(victim).is_ok());  // already down

  // Orphaned subtrees were re-delegated by direct cutover — no copy, no
  // forwarding; there is nobody left to copy from.
  for (EntityId t : owned) {
    EXPECT_NE(cluster->homes().shard_of(t), ShardId{2});
  }
  const StatsSnapshot stats = members.snapshot();
  EXPECT_EQ(stats["crashes"], 1u);
  EXPECT_EQ(stats["redelegations"], owned.size());
  for (const HandoffRecord& record : members.handoffs()) {
    EXPECT_FALSE(record.live);
  }

  // Resolution of names under the re-delegated subtrees succeeds against
  // the survivors' primaries (the graph is shared; no copy was needed).
  for (EntityId t : owned) {
    Result<EntityId> hit =
        cluster->client().resolve(t, CompoundName::relative("c0/c1"));
    EXPECT_TRUE(hit.is_ok());
  }

  // And a rejoin restarts the crashed machine.
  ASSERT_TRUE(members.rejoin(victim).is_ok());
  members.run_handoffs_to_completion();
  EXPECT_EQ(members.state(victim), MemberState::kUp);
}

// --- Renumbering (§6 regression) ---------------------------------------------

TEST(MembershipRename, PreservesNameResolutionWhileBreakingAddresses) {
  Fabric fabric;
  ResolverClientConfig cfg;
  cfg.cache_ttl = 0;
  auto cluster = make_cluster(fabric, 2, cfg);
  MembershipDirectory& members = *cluster->membership();

  // Find the subtree owned by shard 1 and warm the client's glue route to
  // its machine; capture the machine's fully-qualified server address. The
  // warm-up starts at the ROOT so the referral's glue teaches the client
  // shard 1's route — a stored route that goes stale on rename, unlike the
  // fresh candidates a target-start resolve derives from the authority map.
  EntityId target;
  std::string target_name;
  for (std::size_t i = 0; i < fabric.subtrees.size(); ++i) {
    if (cluster->homes().shard_of(fabric.subtrees[i]) == ShardId{1}) {
      target = fabric.subtrees[i];
      target_name = "c" + std::to_string(i);
    }
  }
  ASSERT_TRUE(target.valid());
  const MachineId m1 = cluster->machine(1);
  ASSERT_TRUE(cluster->client()
                  .resolve(fabric.root,
                           CompoundName::relative(target_name + "/c0/c1"))
                  .is_ok());
  auto server = cluster->service().server_on(m1);
  ASSERT_TRUE(server.is_ok());
  const Pid stale_fq =
      Pid::fully_qualified(cluster->net().location_of(server.value()).value());
  EndpointId probe =
      cluster->net().add_endpoint(cluster->client_machine(), "probe");

  ASSERT_TRUE(members.rename(m1).is_ok());
  EXPECT_EQ(members.incarnation(m1), 2u);

  // The fully-qualified pid died with the address...
  auto fq = cluster->transport().resolve_pid(probe, stale_fq);
  EXPECT_FALSE(fq.is_ok() && fq.value() == server.value());

  // ...but the partially-qualified closure — the name, closed over its
  // subtree root — still resolves: the client heals its stale route
  // against the directory's incarnation bump instead of timing out.
  Result<EntityId> hit =
      cluster->client().resolve(target, CompoundName::relative("c0/c1"));
  ASSERT_TRUE(hit.is_ok());
  EXPECT_GT(cluster->metrics().counter_value("ns.member.routes_healed"), 0u);
}

TEST(MembershipRename, TombstoneMapsOldAddressInsideWindowOnly) {
  Fabric fabric;
  auto cluster = make_cluster(fabric, 2);
  MembershipDirectory& members = *cluster->membership();
  const MachineId m0 = cluster->machine(0);

  auto server = cluster->service().server_on(m0);
  ASSERT_TRUE(server.is_ok());
  const Location old_address =
      cluster->net().location_of(server.value()).value();
  ASSERT_TRUE(members.rename(m0).is_ok());

  auto healed = members.renamed_machine_at(old_address);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(*healed, m0);

  // After rename_window ticks the tombstone expires: the old address is
  // meaningless again, exactly like a lapsed forwarding window.
  cluster->sim().run_until(cluster->sim().now() +
                           fast_membership().rename_window + 1);
  EXPECT_FALSE(members.renamed_machine_at(old_address).has_value());
}

// --- Determinism -------------------------------------------------------------

struct ChurnDigest {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t routes_healed = 0;
  std::uint64_t handoffs_live = 0;
  std::uint64_t renames = 0;
  SimTime end_time = 0;
  bool operator==(const ChurnDigest&) const = default;
};

/// A full churn scenario — restart script + rename script under
/// closed-loop load — reduced to a digest. Two runs with the same seed
/// must agree event-for-event.
ChurnDigest run_churn_scenario(std::uint64_t seed) {
  Fabric fabric;
  ResolverClientConfig cfg;
  cfg.cache_ttl = 0;
  cfg.retry.retries = 2;
  cfg.retry.request_timeout = 5000;
  auto cluster = make_cluster(fabric, 3, cfg);
  MembershipDirectory& members = *cluster->membership();

  std::vector<ParallelQuery> queries;
  for (EntityId t : fabric.subtrees) {
    queries.push_back(ParallelQuery{t, CompoundName::relative("c0/c1")});
    queries.push_back(ParallelQuery{t, CompoundName::relative("c1/c1")});
  }
  RollingRestart restart(cluster->sim(), members, {cluster->machine(0)},
                         RollingRestartSpec{200, 1500, 300});
  RollingRenumber renumber(cluster->sim(), members,
                           {cluster->machine(1), cluster->machine(2)},
                           RollingRenumberSpec{400, 900, 1});
  restart.start();
  renumber.start();

  ParallelSpec spec;
  spec.activities = 8;
  spec.total_resolutions = 400;
  spec.seed = seed;
  ParallelOutcome out =
      run_parallel(cluster->sim(), cluster->client(), queries, spec);
  cluster->sim().run_while(
      [&] { return !restart.done() || !renumber.done(); });

  ChurnDigest digest;
  digest.completed = out.completed;
  digest.failed = out.failed;
  digest.routes_healed =
      cluster->metrics().counter_value("ns.member.routes_healed");
  digest.handoffs_live =
      cluster->metrics().counter_value("ns.membership.handoffs_live");
  digest.renames = cluster->metrics().counter_value("ns.membership.renames");
  digest.end_time = cluster->sim().now();
  return digest;
}

TEST(MembershipDeterminism, SameSeedSameChurnDigest) {
  const ChurnDigest first = run_churn_scenario(21);
  const ChurnDigest second = run_churn_scenario(21);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(first.renames, 2u);
  EXPECT_GT(first.handoffs_live, 0u);
}

}  // namespace
}  // namespace namecoh
