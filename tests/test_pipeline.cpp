// Tests for the async resolution engine (docs/ASYNC.md): pipelining of
// concurrent lookups, duplicate-request coalescing (including under
// message loss), per-request reply state, completion callbacks, handle
// settlement on client destruction, and the unified ResolveOptions limit.
#include <gtest/gtest.h>

#include <algorithm>

#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "workload/parallel.hpp"

namespace namecoh {
namespace {

// Topology latencies (TransportConfig defaults): client → same-machine
// server round trip = 10 ticks; client → other-machine server round trip
// = 100 ticks. "shared/proj/..." from root_ is a two-hop chain
// (m1 referral, m2 answer): 110 ticks end to end.
constexpr SimDuration kLocalRtt = 10;
constexpr SimDuration kChainTime = 110;

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : fs_(graph_), transport_(sim_, net_),
        service_(graph_, net_, transport_, homes_) {
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    root_ = fs_.make_root("m1-root");
    shared_ = fs_.make_root("shared");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file_at(root_, "local/data.txt", "local").is_ok());
    ASSERT_TRUE(
        fs_.create_file_at(shared_, "proj/readme", "shared readme").is_ok());
    for (int i = 0; i < 16; ++i) {
      std::string path = "proj/f" + std::to_string(i);
      ASSERT_TRUE(fs_.create_file_at(shared_, path, "f").is_ok());
    }
    ASSERT_TRUE(fs_.attach(root_, Name("shared"), shared_).is_ok());
    homes_.set_home_subtree(graph_, shared_, m2_);
    homes_.set_home_subtree(graph_, root_, m1_);
    service_.add_server(m1_);
    service_.add_server(m2_);
  }

  EntityId expect_entity(const char* path) {
    Context ctx = FileSystem::make_process_context(root_, root_);
    auto found = fs_.resolve_path(ctx, path);
    EXPECT_TRUE(found.status.is_ok()) << path;
    return found.entity;
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  AuthorityMap homes_;
  NameService service_;
  MachineId m1_, m2_;
  EntityId root_, shared_;
};

// --- Tentpole: concurrent resolutions overlap on the wire ------------------

TEST_F(PipelineTest, ConcurrentChainsFinishInOneChainTime) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");

  // Baseline: one blocking two-hop resolution takes kChainTime ticks.
  SimTime before = sim_.now();
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("shared/proj/readme"))
          .is_ok());
  ASSERT_EQ(sim_.now() - before, kChainTime);

  // 16 *distinct* lookups (no coalescing) issued back to back. Serially
  // they would cost 16 × kChainTime; pipelined, every chain's hops
  // interleave and the batch finishes in exactly one chain time.
  std::vector<ResolveHandle> handles;
  SimTime start = sim_.now();
  for (int i = 0; i < 16; ++i) {
    std::string path = "shared/proj/f" + std::to_string(i);
    handles.push_back(client.resolve_async(root_, CompoundName::relative(path)));
    EXPECT_FALSE(handles.back().done());
  }
  EXPECT_EQ(client.inflight(), 16u);
  sim_.run();
  EXPECT_EQ(sim_.now() - start, kChainTime);
  EXPECT_EQ(client.inflight(), 0u);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(handles[i].done());
    ASSERT_TRUE(handles[i].result().is_ok());
    std::string path = "/shared/proj/f" + std::to_string(i);
    EXPECT_EQ(handles[i].result().value(), expect_entity(path.c_str()));
  }
  EXPECT_EQ(client.snapshot()["coalesced"], 0u);
  EXPECT_EQ(client.snapshot()["failures"], 0u);
}

TEST_F(PipelineTest, BlockingResolveMatchesAsyncResult) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  CompoundName name = CompoundName::relative("shared/proj/readme");
  auto blocking = client.resolve(root_, name);
  ResolveHandle handle = client.resolve_async(root_, name);
  sim_.run();
  ASSERT_TRUE(blocking.is_ok());
  ASSERT_TRUE(handle.done());
  ASSERT_TRUE(handle.result().is_ok());
  EXPECT_EQ(handle.result().value(), blocking.value());
  EXPECT_EQ(blocking.value(), expect_entity("/shared/proj/readme"));
}

// --- Tentpole: duplicate-request coalescing --------------------------------

TEST_F(PipelineTest, IdenticalInflightLookupsShareOneWireExchange) {
  transport_.tracer().set_enabled(true);
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  CompoundName name = CompoundName::relative("shared/proj/readme");

  ResolveHandle owner = client.resolve_async(root_, name);
  ResolveHandle attached = client.resolve_async(root_, name);
  EXPECT_EQ(client.inflight(), 1u);  // one exchange, two waiters
  sim_.run();

  ASSERT_TRUE(owner.done());
  ASSERT_TRUE(attached.done());
  ASSERT_TRUE(owner.result().is_ok());
  ASSERT_TRUE(attached.result().is_ok());
  EXPECT_EQ(owner.result().value(), attached.result().value());

  auto stats = client.snapshot();
  EXPECT_EQ(stats["resolutions"], 2u);
  EXPECT_EQ(stats["coalesced"], 1u);
  EXPECT_EQ(stats["messages_sent"], 2u);  // two hops, sent once each
  EXPECT_EQ(service_.snapshot()["requests"], 2u);  // one per hop, not four

  // Each waiter has its own span; the wire correlation ids live on the
  // owner's span, and the attached span records the kCoalesced event.
  const Tracer& tracer = transport_.tracer();
  ASSERT_NE(owner.span(), 0u);
  ASSERT_NE(attached.span(), 0u);
  EXPECT_NE(owner.span(), attached.span());
  auto span_by_id = [&tracer](std::uint64_t id) -> const SpanRecord* {
    for (const SpanRecord& span : tracer.spans()) {
      if (span.id == id) return &span;
    }
    return nullptr;
  };
  const SpanRecord* owner_span = span_by_id(owner.span());
  const SpanRecord* attached_span = span_by_id(attached.span());
  ASSERT_NE(owner_span, nullptr);
  ASSERT_NE(attached_span, nullptr);
  EXPECT_FALSE(owner_span->open);
  EXPECT_FALSE(attached_span->open);
  EXPECT_TRUE(owner_span->ok);
  EXPECT_TRUE(attached_span->ok);
  EXPECT_EQ(owner_span->corrs.size(), 2u);
  EXPECT_TRUE(attached_span->corrs.empty());
  auto attached_events = tracer.events_for_span(attached.span());
  auto coalesced = std::find_if(
      attached_events.begin(), attached_events.end(),
      [](const TraceEvent& e) { return e.kind == EventKind::kCoalesced; });
  ASSERT_NE(coalesced, attached_events.end());
  EXPECT_EQ(coalesced->a, root_.value());
  EXPECT_EQ(std::count_if(attached_events.begin(), attached_events.end(),
                          [](const TraceEvent& e) {
                            return e.kind == EventKind::kCoalesced;
                          }),
            1);
}

// Satellite: coalescing under fault injection. The exchange's first send
// is lost; both waiters must settle from the single retried request —
// exactly one wire request per attempt, never one per waiter.
TEST_F(PipelineTest, CoalescedWaitersBothCompleteAfterRetry) {
  ResolverClientConfig config;
  config.retry.retries = 1;
  config.retry.request_timeout = 100;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  transport_.set_drop_probability(1.0);
  sim_.schedule_at(50, [this] { transport_.set_drop_probability(0.0); });

  CompoundName name = CompoundName::relative("local/data.txt");
  ResolveHandle owner = client.resolve_async(root_, name);
  ResolveHandle attached = client.resolve_async(root_, name);
  sim_.run();

  // t=0 send dropped; t=100 timeout → retry delivered; reply at t=110.
  EXPECT_EQ(sim_.now(), 110u);
  ASSERT_TRUE(owner.done());
  ASSERT_TRUE(attached.done());
  ASSERT_TRUE(owner.result().is_ok());
  ASSERT_TRUE(attached.result().is_ok());
  EXPECT_EQ(owner.result().value(), expect_entity("/local/data.txt"));
  EXPECT_EQ(attached.result().value(), owner.result().value());

  auto stats = client.snapshot();
  EXPECT_EQ(stats["coalesced"], 1u);
  EXPECT_EQ(stats["messages_sent"], 2u);   // first attempt + one retry
  EXPECT_EQ(stats["timeouts"], 1u);
  EXPECT_EQ(stats["backoff_retries"], 1u);
  EXPECT_EQ(stats["failures"], 0u);
  EXPECT_EQ(service_.snapshot()["requests"], 1u);  // only the retry arrived
  EXPECT_EQ(service_.snapshot()["answers"], 1u);
}

// Regression: coalescing used to match on CacheKey{start, name} alone, so
// a waiter with a *stricter* referral limit silently attached to an
// exchange run under the owner's looser options and got an answer its own
// limit forbids. Option variants that change the wire outcome must run
// their own exchange ("coalesce_rejected").
TEST_F(PipelineTest, CoalescingRefusesMismatchedResolveOptions) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  CompoundName name = CompoundName::relative("shared/proj/readme");

  // Owner runs under the default budget (plenty for the two-hop chain);
  // the strict waiter allows zero referrals and must fail on its own.
  ResolveHandle owner = client.resolve_async(root_, name);
  ResolveOptions strict;
  strict.max_referrals = 0;
  ResolveHandle limited = client.resolve_async(root_, name, strict);
  EXPECT_EQ(client.inflight(), 2u);  // two exchanges, not one
  sim_.run();

  ASSERT_TRUE(owner.done());
  ASSERT_TRUE(limited.done());
  ASSERT_TRUE(owner.result().is_ok());
  EXPECT_EQ(owner.result().value(), expect_entity("/shared/proj/readme"));
  ASSERT_FALSE(limited.result().is_ok());
  EXPECT_EQ(limited.result().code(), StatusCode::kDepthExceeded);

  auto stats = client.snapshot();
  EXPECT_EQ(stats["coalesced"], 0u);
  EXPECT_EQ(stats["coalesce_rejected"], 1u);

  // Matching options still coalesce — the refusal is per-variant, and a
  // third waiter under the strict options attaches to the strict exchange.
  ResolveHandle again = client.resolve_async(root_, name, strict);
  ResolveHandle attached = client.resolve_async(root_, name, strict);
  EXPECT_EQ(client.inflight(), 1u);
  sim_.run();
  ASSERT_TRUE(again.done());
  ASSERT_TRUE(attached.done());
  EXPECT_EQ(attached.result().code(), StatusCode::kDepthExceeded);
  EXPECT_EQ(client.snapshot()["coalesced"], 1u);
}

// --- Satellite: per-request reply state ------------------------------------

// Regression for the client-wide reply_* scratch fields: a fast local
// reply landing while a slower referral chain is mid-flight must not
// clobber the other resolution's decoded state.
TEST_F(PipelineTest, OverlappingResolutionsKeepReplyStateSeparate) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  ResolveHandle fast =
      client.resolve_async(root_, CompoundName::relative("local/data.txt"));
  ResolveHandle slow = client.resolve_async(
      root_, CompoundName::relative("shared/proj/readme"));
  ResolveHandle missing =
      client.resolve_async(root_, CompoundName::relative("shared/proj/ghost"));
  EXPECT_EQ(client.inflight(), 3u);

  // The fast reply (t=10) arrives while the other chains are between
  // hops; drive to just past it and check nothing else settled early.
  sim_.run_until(kLocalRtt + 1);
  EXPECT_TRUE(fast.done());
  EXPECT_FALSE(slow.done());
  EXPECT_FALSE(missing.done());
  sim_.run();

  ASSERT_TRUE(slow.done());
  ASSERT_TRUE(missing.done());
  ASSERT_TRUE(fast.result().is_ok());
  ASSERT_TRUE(slow.result().is_ok());
  EXPECT_EQ(fast.result().value(), expect_entity("/local/data.txt"));
  EXPECT_EQ(slow.result().value(), expect_entity("/shared/proj/readme"));
  EXPECT_FALSE(missing.result().is_ok());
  EXPECT_EQ(missing.result().code(), StatusCode::kNotFound);
}

// --- Callbacks -------------------------------------------------------------

TEST_F(PipelineTest, CallbackFiresOnceAndMayChainResolutions) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  int first_calls = 0;
  int second_calls = 0;
  Result<EntityId> second_result = internal_error("not yet");
  client.resolve_async(
      root_, CompoundName::relative("local/data.txt"),
      [&](const Result<EntityId>& result) {
        ++first_calls;
        ASSERT_TRUE(result.is_ok());
        // Submitting from inside a completion is allowed.
        client.resolve_async(
            root_, CompoundName::relative("shared/proj/readme"),
            [&](const Result<EntityId>& chained) {
              ++second_calls;
              second_result = chained;
            });
      });
  sim_.run();
  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(second_calls, 1);
  ASSERT_TRUE(second_result.is_ok());
  EXPECT_EQ(second_result.value(), expect_entity("/shared/proj/readme"));
}

TEST_F(PipelineTest, SynchronousSettlementsInvokeCallbackBeforeReturn) {
  ResolverClientConfig config;
  config.cache_ttl = 1000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName name = CompoundName::relative("local/data.txt");
  ASSERT_TRUE(client.resolve(root_, name).is_ok());  // warm the cache

  bool fired = false;
  ResolveHandle handle = client.resolve_async(
      root_, name, [&](const Result<EntityId>& result) {
        fired = true;
        EXPECT_TRUE(result.is_ok());
      });
  EXPECT_TRUE(fired);         // cache hit settles at submission
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(client.snapshot()["cache_hits"], 1u);
}

// --- Lifecycle -------------------------------------------------------------

TEST_F(PipelineTest, DestroyedClientSettlesOutstandingHandles) {
  ResolveHandle orphan;
  {
    ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
    orphan = client.resolve_async(
        root_, CompoundName::relative("shared/proj/readme"));
    EXPECT_FALSE(orphan.done());
  }
  ASSERT_TRUE(orphan.done());  // settled by the destructor, not leaked
  EXPECT_FALSE(orphan.result().is_ok());
  EXPECT_EQ(orphan.result().code(), StatusCode::kUnreachable);
  sim_.run();  // stray replies to the dead endpoint must be harmless
}

// --- Satellite: the unified ResolveOptions carries the referral limit ------

TEST_F(PipelineTest, ReferralLimitZeroReportsDepthExceeded) {
  ResolverClientConfig config;
  config.resolve.max_referrals = 0;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  auto result =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kDepthExceeded);
  auto stats = client.snapshot();
  EXPECT_EQ(stats["referrals_followed"], 1u);  // the limit-breaking one
  EXPECT_EQ(stats["failures"], 1u);
}

// --- The closed-loop parallel workload -------------------------------------

TEST_F(PipelineTest, ClosedLoopWorkloadDrivesConcurrentActivities) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  std::vector<ParallelQuery> queries;
  for (int i = 0; i < 16; ++i) {
    std::string path = "shared/proj/f" + std::to_string(i);
    queries.push_back({root_, CompoundName::relative(path)});
  }
  ParallelSpec spec;
  spec.activities = 8;
  spec.total_resolutions = 40;
  spec.think_time = 10;
  ParallelOutcome out = run_parallel(sim_, client, queries, spec);
  EXPECT_EQ(out.issued, 40u);
  EXPECT_EQ(out.completed, 40u);
  EXPECT_EQ(out.ok, 40u);
  EXPECT_EQ(out.failed, 0u);
  // 8-way overlap: the batch must beat a serial schedule by a wide margin
  // (40 serial chains would cost 40 × kChainTime even with zero think).
  EXPECT_LT(out.elapsed(), 40 * kChainTime);
  EXPECT_GE(out.elapsed(), kChainTime);
  EXPECT_EQ(client.inflight(), 0u);
}

}  // namespace
}  // namespace namecoh
