// Tests for the file-system substrate: directories as context objects,
// dot bindings, path resolution, mounts, super-roots, replication, and
// subtree copy/move.
#include <gtest/gtest.h>

#include "fs/file_system.hpp"

namespace namecoh {
namespace {

class FsTest : public ::testing::Test {
 protected:
  FsTest() : fs_(graph_) { root_ = fs_.make_root("root"); }

  Resolution at(EntityId root, std::string_view path) {
    return fs_.resolve_path(FileSystem::make_process_context(root, root),
                            path);
  }

  NamingGraph graph_;
  FileSystem fs_;
  EntityId root_;
};

TEST_F(FsTest, RootHasSelfDots) {
  EXPECT_EQ(graph_.context(root_)(Name(".")), root_);
  EXPECT_EQ(graph_.context(root_)(Name("..")), root_);
}

TEST_F(FsTest, MkdirCreatesDirWithDots) {
  auto dir = fs_.mkdir(root_, Name("etc"));
  ASSERT_TRUE(dir.is_ok());
  EXPECT_TRUE(fs_.is_dir(dir.value()));
  EXPECT_EQ(graph_.context(dir.value())(Name(".")), dir.value());
  EXPECT_EQ(graph_.context(dir.value())(Name("..")), root_);
  EXPECT_EQ(fs_.parent_of(dir.value()).value(), root_);
}

TEST_F(FsTest, MkdirDuplicateFails) {
  ASSERT_TRUE(fs_.mkdir(root_, Name("x")).is_ok());
  EXPECT_EQ(fs_.mkdir(root_, Name("x")).code(), StatusCode::kAlreadyExists);
}

TEST_F(FsTest, MkdirInNonDirFails) {
  auto file = fs_.create_file(root_, Name("f"));
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(fs_.mkdir(file.value(), Name("x")).code(),
            StatusCode::kNotAContext);
}

TEST_F(FsTest, CreateFileAndData) {
  auto file = fs_.create_file(root_, Name("motd"), "hello");
  ASSERT_TRUE(file.is_ok());
  EXPECT_TRUE(fs_.is_file(file.value()));
  EXPECT_EQ(graph_.data(file.value()), "hello");
  EXPECT_EQ(fs_.create_file(root_, Name("motd")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FsTest, LinkAliasesEntity) {
  auto file = fs_.create_file(root_, Name("orig"));
  ASSERT_TRUE(file.is_ok());
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  ASSERT_TRUE(fs_.link(dir.value(), Name("alias"), file.value()).is_ok());
  EXPECT_EQ(at(root_, "/d/alias").entity, file.value());
  EXPECT_EQ(at(root_, "/orig").entity, file.value());
  // link does not retarget '..' of a linked directory.
  auto sub = fs_.mkdir(root_, Name("sub"));
  ASSERT_TRUE(fs_.link(dir.value(), Name("sub2"), sub.value()).is_ok());
  EXPECT_EQ(fs_.parent_of(sub.value()).value(), root_);
}

TEST_F(FsTest, UnlinkRemovesBindingOnly) {
  auto file = fs_.create_file(root_, Name("f"), "data");
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE(fs_.unlink(root_, Name("f")).is_ok());
  EXPECT_FALSE(at(root_, "/f").ok());
  // The entity still exists (no GC), just unnamed.
  EXPECT_EQ(graph_.data(file.value()), "data");
  // Refuses to unlink dots.
  EXPECT_EQ(fs_.unlink(root_, Name(".")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_.unlink(root_, Name("..")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FsTest, ListSkipsDots) {
  ASSERT_TRUE(fs_.mkdir(root_, Name("a")).is_ok());
  ASSERT_TRUE(fs_.create_file(root_, Name("b")).is_ok());
  auto entries = fs_.list(root_);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first.text(), "a");
  EXPECT_EQ(entries[1].first.text(), "b");
}

TEST_F(FsTest, ResolvePathAbsoluteRelativeDots) {
  auto etc = fs_.mkdir(root_, Name("etc"));
  ASSERT_TRUE(etc.is_ok());
  auto passwd = fs_.create_file(etc.value(), Name("passwd"));
  ASSERT_TRUE(passwd.is_ok());
  // Absolute.
  EXPECT_EQ(at(root_, "/etc/passwd").entity, passwd.value());
  // Relative from cwd = root.
  EXPECT_EQ(at(root_, "etc/passwd").entity, passwd.value());
  // With dots.
  EXPECT_EQ(at(root_, "/etc/./passwd").entity, passwd.value());
  EXPECT_EQ(at(root_, "/etc/../etc/passwd").entity, passwd.value());
  // cwd = etc.
  Context ctx = FileSystem::make_process_context(root_, etc.value());
  EXPECT_EQ(fs_.resolve_path(ctx, "passwd").entity, passwd.value());
  EXPECT_EQ(fs_.resolve_path(ctx, "./passwd").entity, passwd.value());
  EXPECT_EQ(fs_.resolve_path(ctx, "../etc/passwd").entity, passwd.value());
  EXPECT_EQ(fs_.resolve_path(ctx, ".").entity, etc.value());
  EXPECT_EQ(fs_.resolve_path(ctx, "/").entity, root_);
}

TEST_F(FsTest, ResolvePathErrors) {
  EXPECT_EQ(at(root_, "/nope").status.code(), StatusCode::kNotFound);
  EXPECT_EQ(at(root_, "").status.code(), StatusCode::kInvalidArgument);
  auto f = fs_.create_file(root_, Name("f"));
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(at(root_, "/f/deeper").status.code(), StatusCode::kNotAContext);
}

TEST_F(FsTest, MkdirP) {
  auto deep = fs_.mkdir_p(root_, "a/b/c");
  ASSERT_TRUE(deep.is_ok());
  EXPECT_EQ(at(root_, "/a/b/c").entity, deep.value());
  // Idempotent.
  EXPECT_EQ(fs_.mkdir_p(root_, "a/b/c").value(), deep.value());
  // Partial existence is fine.
  ASSERT_TRUE(fs_.mkdir_p(root_, "a/b/d").is_ok());
  // Absolute path rejected.
  EXPECT_FALSE(fs_.mkdir_p(root_, "/abs").is_ok());
  // Path through a file fails.
  ASSERT_TRUE(fs_.create_file(root_, Name("file")).is_ok());
  EXPECT_EQ(fs_.mkdir_p(root_, "file/x").code(), StatusCode::kNotAContext);
}

TEST_F(FsTest, CreateFileAt) {
  auto file = fs_.create_file_at(root_, "usr/bin/cc", "compiler");
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(at(root_, "/usr/bin/cc").entity, file.value());
  EXPECT_EQ(graph_.data(file.value()), "compiler");
  // Overwrites content when the file already exists.
  auto again = fs_.create_file_at(root_, "usr/bin/cc", "cc v2");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), file.value());
  EXPECT_EQ(graph_.data(file.value()), "cc v2");
  // Basename without directories works.
  EXPECT_TRUE(fs_.create_file_at(root_, "toplevel", "x").is_ok());
}

TEST_F(FsTest, WalkVisitsWholeTreeOnce) {
  ASSERT_TRUE(fs_.create_file_at(root_, "a/f1", "").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "a/b/f2", "").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "c/f3", "").is_ok());
  std::vector<std::string> paths;
  fs_.walk(root_, [&](const CompoundName& path, EntityId) {
    paths.push_back(path.to_path());
  });
  // 3 dirs (a, a/b, c) + 3 files.
  EXPECT_EQ(paths.size(), 6u);
  EXPECT_NE(std::find(paths.begin(), paths.end(), "a/b/f2"), paths.end());
}

TEST_F(FsTest, WalkIsCycleSafe) {
  auto a = fs_.mkdir(root_, Name("a"));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(fs_.link(a.value(), Name("loop"), root_).is_ok());
  std::size_t visits = 0;
  fs_.walk(root_, [&](const CompoundName&, EntityId) { ++visits; });
  EXPECT_LT(visits, 10u);
}

TEST_F(FsTest, AttachSharesSubtreeWithoutReparenting) {
  EntityId shared = fs_.make_root("shared");
  ASSERT_TRUE(fs_.create_file_at(shared, "data", "shared data").is_ok());
  EntityId other_root = fs_.make_root("other");
  ASSERT_TRUE(fs_.attach(root_, Name("vice"), shared).is_ok());
  ASSERT_TRUE(fs_.attach(other_root, Name("vice"), shared).is_ok());
  // Both roots see the same entity.
  EXPECT_EQ(at(root_, "/vice/data").entity, at(other_root, "/vice/data").entity);
  // '..' of the shared tree still points at itself (not re-parented).
  EXPECT_EQ(fs_.parent_of(shared).value(), shared);
  // Duplicate attach name fails.
  EXPECT_EQ(fs_.attach(root_, Name("vice"), shared).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FsTest, MountReparents) {
  EntityId sub = fs_.make_root("sub");
  ASSERT_TRUE(fs_.mount(root_, Name("mnt"), sub).is_ok());
  EXPECT_EQ(fs_.parent_of(sub).value(), root_);
  EXPECT_EQ(at(root_, "/mnt").entity, sub);
  EXPECT_EQ(at(root_, "/mnt/..").entity, root_);
}

TEST_F(FsTest, SuperRootGluesMachineTrees) {
  EntityId m1 = fs_.make_root("m1");
  EntityId m2 = fs_.make_root("m2");
  ASSERT_TRUE(fs_.create_file_at(m2, "etc/hosts", "m2 hosts").is_ok());
  EntityId super = fs_.make_super_root("super", {{Name("m1"), m1},
                                                 {Name("m2"), m2}});
  // From m1, '..' above the root reaches m2 (the Newcastle trick).
  Resolution res = at(m1, "/../m2/etc/hosts");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "m2 hosts");
  // The super-root's own '..' is itself.
  EXPECT_EQ(fs_.parent_of(super).value(), super);
}

TEST_F(FsTest, ReplicateFileCreatesWeaklyEqualCopy) {
  auto orig = fs_.create_file(root_, Name("cc"), "compiler");
  ASSERT_TRUE(orig.is_ok());
  EntityId other = fs_.make_root("other");
  auto replica = fs_.replicate_file(orig.value(), other, Name("cc"));
  ASSERT_TRUE(replica.is_ok());
  EXPECT_NE(replica.value(), orig.value());
  EXPECT_EQ(graph_.data(replica.value()), "compiler");
  EXPECT_TRUE(graph_.weakly_equal(orig.value(), replica.value()));
  // A third replica joins the same group.
  EntityId third = fs_.make_root("third");
  auto replica2 = fs_.replicate_file(orig.value(), third, Name("cc"));
  ASSERT_TRUE(replica2.is_ok());
  EXPECT_TRUE(graph_.weakly_equal(replica.value(), replica2.value()));
}

TEST_F(FsTest, ReplicateNonFileFails) {
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  EXPECT_FALSE(fs_.replicate_file(dir.value(), root_, Name("x")).is_ok());
}

TEST_F(FsTest, CopySubtreeIsDeepAndIndependent) {
  ASSERT_TRUE(fs_.create_file_at(root_, "doc/ch1/sec1", "s1").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "doc/style", "style").is_ok());
  EntityId doc = at(root_, "/doc").entity;
  EntityId dest = fs_.make_root("dest");
  auto copy = fs_.copy_subtree(doc, dest, Name("doc-copy"));
  ASSERT_TRUE(copy.is_ok());
  // Copied structure resolves.
  Resolution copied_sec = at(dest, "/doc-copy/ch1/sec1");
  ASSERT_TRUE(copied_sec.ok());
  EXPECT_EQ(graph_.data(copied_sec.entity), "s1");
  // Deep: the copied file is a different entity.
  EXPECT_NE(copied_sec.entity, at(root_, "/doc/ch1/sec1").entity);
  // Mutating the copy leaves the original alone.
  graph_.set_data(copied_sec.entity, "changed");
  EXPECT_EQ(graph_.data(at(root_, "/doc/ch1/sec1").entity), "s1");
  // '..' of the copy root points into the destination.
  EXPECT_EQ(fs_.parent_of(copy.value()).value(), dest);
}

TEST_F(FsTest, CopySubtreePreservesEmbeddedNames) {
  ASSERT_TRUE(fs_.create_file_at(root_, "doc/main", "body").is_ok());
  EntityId main = at(root_, "/doc/main").entity;
  graph_.add_embedded_name(main, CompoundName::relative("style"));
  EntityId doc = at(root_, "/doc").entity;
  auto copy = fs_.copy_subtree(doc, root_, Name("doc2"));
  ASSERT_TRUE(copy.is_ok());
  EntityId copied_main = at(root_, "/doc2/main").entity;
  ASSERT_EQ(graph_.embedded_names(copied_main).size(), 1u);
  EXPECT_EQ(graph_.embedded_names(copied_main)[0].to_path(), "style");
}

TEST_F(FsTest, CopySubtreePreservesInternalSharing) {
  // Two links to the same file inside the subtree stay one entity.
  auto doc = fs_.mkdir(root_, Name("doc"));
  ASSERT_TRUE(doc.is_ok());
  auto shared = fs_.create_file(doc.value(), Name("shared"), "x");
  ASSERT_TRUE(shared.is_ok());
  ASSERT_TRUE(fs_.link(doc.value(), Name("alias"), shared.value()).is_ok());
  auto copy = fs_.copy_subtree(doc.value(), root_, Name("doc2"));
  ASSERT_TRUE(copy.is_ok());
  EXPECT_EQ(at(root_, "/doc2/shared").entity, at(root_, "/doc2/alias").entity);
  EXPECT_NE(at(root_, "/doc2/shared").entity, shared.value());
}

TEST_F(FsTest, CopySubtreeHandlesCycles) {
  auto doc = fs_.mkdir(root_, Name("doc"));
  ASSERT_TRUE(doc.is_ok());
  auto inner = fs_.mkdir(doc.value(), Name("inner"));
  ASSERT_TRUE(inner.is_ok());
  ASSERT_TRUE(fs_.link(inner.value(), Name("back"), doc.value()).is_ok());
  auto copy = fs_.copy_subtree(doc.value(), root_, Name("doc2"));
  ASSERT_TRUE(copy.is_ok());
  // The cycle is preserved within the copy.
  EXPECT_EQ(at(root_, "/doc2/inner/back").entity, copy.value());
}

TEST_F(FsTest, MoveEntryRelinksAndReparents) {
  ASSERT_TRUE(fs_.create_file_at(root_, "src/d/f", "x").is_ok());
  EntityId src = at(root_, "/src").entity;
  EntityId d = at(root_, "/src/d").entity;
  EntityId dest = fs_.make_root("dest");
  ASSERT_TRUE(fs_.move_entry(src, Name("d"), dest, Name("moved")).is_ok());
  EXPECT_FALSE(at(root_, "/src/d").ok());
  EXPECT_EQ(at(dest, "/moved").entity, d);
  EXPECT_EQ(at(dest, "/moved/f").entity.valid(), true);
  EXPECT_EQ(fs_.parent_of(d).value(), dest);
}

TEST_F(FsTest, MoveEntryErrors) {
  EntityId dest = fs_.make_root("dest");
  EXPECT_EQ(fs_.move_entry(root_, Name("nope"), dest, Name("x")).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(fs_.create_file(root_, Name("f")).is_ok());
  ASSERT_TRUE(fs_.create_file(dest, Name("taken")).is_ok());
  EXPECT_EQ(fs_.move_entry(root_, Name("f"), dest, Name("taken")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FsTest, ProcessContextHasExactlyRootAndCwd) {
  Context ctx = FileSystem::make_process_context(root_, root_);
  EXPECT_EQ(ctx.size(), 2u);
  EXPECT_EQ(ctx(Name("/")), root_);
  EXPECT_EQ(ctx(Name(".")), root_);
}

}  // namespace
}  // namespace namecoh
