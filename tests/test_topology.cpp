// Tests for the internetwork: address allocation, lookups, renumbering
// semantics (identity vs address), address reuse.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace namecoh {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net1_ = net_.add_network("net1");
    net2_ = net_.add_network("net2");
    m1_ = net_.add_machine(net1_, "m1");
    m2_ = net_.add_machine(net1_, "m2");
    m3_ = net_.add_machine(net2_, "m3");
    p1_ = net_.add_endpoint(m1_, "p1");
    p2_ = net_.add_endpoint(m1_, "p2");
    p3_ = net_.add_endpoint(m2_, "p3");
    p4_ = net_.add_endpoint(m3_, "p4");
  }

  Internetwork net_;
  NetworkId net1_, net2_;
  MachineId m1_, m2_, m3_;
  EndpointId p1_, p2_, p3_, p4_;
};

TEST_F(TopologyTest, CountsAndLabels) {
  EXPECT_EQ(net_.network_count(), 2u);
  EXPECT_EQ(net_.machine_count(), 3u);
  EXPECT_EQ(net_.endpoint_count(), 4u);
  EXPECT_EQ(net_.network_label(net1_), "net1");
  EXPECT_EQ(net_.machine_label(m2_), "m2");
  EXPECT_EQ(net_.endpoint_label(p4_), "p4");
}

TEST_F(TopologyTest, AddressesAreAssignedDensely) {
  Location l1 = net_.location_of(p1_).value();
  Location l2 = net_.location_of(p2_).value();
  Location l3 = net_.location_of(p3_).value();
  Location l4 = net_.location_of(p4_).value();
  // Same machine: same (naddr, maddr), distinct laddrs.
  EXPECT_TRUE(l1.same_machine(l2));
  EXPECT_NE(l1.laddr, l2.laddr);
  // Same network, different machines.
  EXPECT_TRUE(l1.same_network(l3));
  EXPECT_FALSE(l1.same_machine(l3));
  // Different network.
  EXPECT_FALSE(l1.same_network(l4));
  // All fields >= 1 (0 is reserved for "unqualified").
  for (Location l : {l1, l2, l3, l4}) {
    EXPECT_GE(l.naddr, 1u);
    EXPECT_GE(l.maddr, 1u);
    EXPECT_GE(l.laddr, 1u);
  }
}

TEST_F(TopologyTest, EndpointAtInvertsLocationOf) {
  for (EndpointId ep : {p1_, p2_, p3_, p4_}) {
    Location loc = net_.location_of(ep).value();
    auto back = net_.endpoint_at(loc);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), ep);
  }
}

TEST_F(TopologyTest, EndpointAtUnknownLocationIsUnreachable) {
  EXPECT_EQ(net_.endpoint_at(Location{99, 99, 99}).code(),
            StatusCode::kUnreachable);
}

TEST_F(TopologyTest, StructureQueries) {
  EXPECT_EQ(net_.machine_of(p1_).value(), m1_);
  EXPECT_EQ(net_.network_of(m1_).value(), net1_);
  EXPECT_EQ(net_.endpoints_on(m1_).size(), 2u);
  EXPECT_EQ(net_.machines_in(net1_).size(), 2u);
  EXPECT_EQ(net_.networks().size(), 2u);
  EXPECT_EQ(net_.endpoints().size(), 4u);
}

TEST_F(TopologyTest, RemoveEndpoint) {
  Location old_loc = net_.location_of(p2_).value();
  ASSERT_TRUE(net_.remove_endpoint(p2_).is_ok());
  EXPECT_FALSE(net_.has_endpoint(p2_));
  EXPECT_EQ(net_.endpoint_count(), 3u);
  EXPECT_FALSE(net_.location_of(p2_).is_ok());
  EXPECT_FALSE(net_.endpoint_at(old_loc).is_ok());
  EXPECT_FALSE(net_.remove_endpoint(p2_).is_ok());  // already gone
}

TEST_F(TopologyTest, RenumberMachineChangesAddressKeepsIdentity) {
  Location before = net_.location_of(p1_).value();
  ASSERT_TRUE(net_.renumber_machine(m1_).is_ok());
  Location after = net_.location_of(p1_).value();
  EXPECT_NE(before.maddr, after.maddr);
  EXPECT_EQ(before.naddr, after.naddr);   // network unchanged
  EXPECT_EQ(before.laddr, after.laddr);   // local addr unchanged
  // The old address is dead; the new one finds the endpoint.
  EXPECT_FALSE(net_.endpoint_at(before).is_ok());
  EXPECT_EQ(net_.endpoint_at(after).value(), p1_);
  // Sibling process moved with the machine.
  EXPECT_EQ(net_.location_of(p2_).value().maddr, after.maddr);
  EXPECT_EQ(net_.reconfigurations(), 1u);
}

TEST_F(TopologyTest, RenumberNetworkChangesAllMachines) {
  Location p1_before = net_.location_of(p1_).value();
  Location p3_before = net_.location_of(p3_).value();
  Location p4_before = net_.location_of(p4_).value();
  ASSERT_TRUE(net_.renumber_network(net1_).is_ok());
  Location p1_after = net_.location_of(p1_).value();
  Location p3_after = net_.location_of(p3_).value();
  EXPECT_NE(p1_before.naddr, p1_after.naddr);
  EXPECT_EQ(p1_after.naddr, p3_after.naddr);
  EXPECT_EQ(p1_before.maddr, p1_after.maddr);  // maddr survives
  EXPECT_EQ(p3_before.maddr, p3_after.maddr);
  // net2 untouched.
  EXPECT_EQ(net_.location_of(p4_).value(), p4_before);
}

TEST_F(TopologyTest, MoveMachineToOtherNetwork) {
  ASSERT_TRUE(net_.move_machine(m2_, net2_).is_ok());
  EXPECT_EQ(net_.network_of(m2_).value(), net2_);
  Location p3_loc = net_.location_of(p3_).value();
  EXPECT_EQ(p3_loc.naddr, net_.naddr_of(net2_).value());
  EXPECT_EQ(net_.machines_in(net1_).size(), 1u);
  EXPECT_EQ(net_.machines_in(net2_).size(), 2u);
  EXPECT_EQ(net_.endpoint_at(p3_loc).value(), p3_);
}

TEST_F(TopologyTest, NoAddressReuseByDefault) {
  Location before = net_.location_of(p1_).value();
  ASSERT_TRUE(net_.renumber_machine(m1_).is_ok());
  // A new machine gets a *fresh* maddr, never the vacated one.
  MachineId m_new = net_.add_machine(net1_, "m-new");
  EXPECT_NE(net_.maddr_of(m_new).value(), before.maddr);
}

TEST_F(TopologyTest, AddressReuseCanResurrectStaleAddresses) {
  net_.set_address_reuse(true);
  Location before = net_.location_of(p1_).value();
  ASSERT_TRUE(net_.renumber_machine(m1_).is_ok());
  MachineId m_new = net_.add_machine(net1_, "imposter-machine");
  EXPECT_EQ(net_.maddr_of(m_new).value(), before.maddr);
  EndpointId imposter = net_.add_endpoint(m_new, "imposter");
  // The imposter now answers at p1's pre-renumbering address: the
  // dangerous case for stale fully-qualified pids.
  EXPECT_EQ(net_.endpoint_at(before).value(), imposter);
}

TEST_F(TopologyTest, LocalAddressReuseMisdirectsStalePids) {
  // The §6 danger at the *local* level: an endpoint dies, its laddr is
  // reused, and a stored (0,0,l) pid on the same machine silently denotes
  // the newcomer.
  net_.set_address_reuse(true);
  Location p1_loc = net_.location_of(p1_).value();
  ASSERT_TRUE(net_.remove_endpoint(p1_).is_ok());
  EndpointId newcomer = net_.add_endpoint(m1_, "newcomer");
  EXPECT_EQ(net_.location_of(newcomer).value(), p1_loc);
  EXPECT_EQ(net_.endpoint_at(p1_loc).value(), newcomer);
}

TEST_F(TopologyTest, NoLaddrReuseByDefault) {
  Location p1_loc = net_.location_of(p1_).value();
  ASSERT_TRUE(net_.remove_endpoint(p1_).is_ok());
  EndpointId newcomer = net_.add_endpoint(m1_, "newcomer");
  EXPECT_NE(net_.location_of(newcomer).value().laddr, p1_loc.laddr);
  EXPECT_FALSE(net_.endpoint_at(p1_loc).is_ok());
}

TEST_F(TopologyTest, ErrorsOnUnknownIds) {
  EXPECT_FALSE(net_.location_of(EndpointId(99)).is_ok());
  EXPECT_FALSE(net_.machine_of(EndpointId(99)).is_ok());
  EXPECT_FALSE(net_.network_of(MachineId(99)).is_ok());
  EXPECT_FALSE(net_.renumber_machine(MachineId(99)).is_ok());
  EXPECT_FALSE(net_.renumber_network(NetworkId(99)).is_ok());
  EXPECT_FALSE(net_.move_machine(MachineId(99), net1_).is_ok());
  EXPECT_FALSE(net_.move_machine(m1_, NetworkId(99)).is_ok());
  EXPECT_THROW(net_.add_machine(NetworkId(99), "x"), PreconditionError);
  EXPECT_THROW(net_.add_endpoint(MachineId(99), "x"), PreconditionError);
}

TEST_F(TopologyTest, LaddrsUniquePerMachineAcrossMachines) {
  // Two machines can have the same laddr values — only the triple is
  // unique.
  Location l1 = net_.location_of(p1_).value();
  Location l3 = net_.location_of(p3_).value();
  EXPECT_EQ(l1.laddr, l3.laddr);  // both are the first endpoint: laddr 1
  EXPECT_NE(l1, l3);
}

// Renumber sweep: after k renumberings, location_of/endpoint_at stay
// mutually consistent for every endpoint.
class RenumberSweep : public ::testing::TestWithParam<int> {};

TEST_P(RenumberSweep, IndexStaysConsistent) {
  Internetwork net;
  NetworkId n = net.add_network("n");
  std::vector<MachineId> machines;
  std::vector<EndpointId> endpoints;
  for (int i = 0; i < 4; ++i) {
    machines.push_back(net.add_machine(n, "m" + std::to_string(i)));
    for (int j = 0; j < 3; ++j) {
      endpoints.push_back(
          net.add_endpoint(machines.back(), "p" + std::to_string(j)));
    }
  }
  int rounds = GetParam();
  for (int k = 0; k < rounds; ++k) {
    ASSERT_TRUE(net.renumber_machine(machines[k % 4]).is_ok());
    if (k % 3 == 0) {
      ASSERT_TRUE(net.renumber_network(n).is_ok());
    }
    for (EndpointId ep : endpoints) {
      Location loc = net.location_of(ep).value();
      EXPECT_EQ(net.endpoint_at(loc).value(), ep);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, RenumberSweep,
                         ::testing::Values(1, 2, 5, 10, 25));

}  // namespace
}  // namespace namecoh
