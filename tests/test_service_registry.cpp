// Tests for the service registry: double pid rebase (provider → registry →
// requester), coherence of service names across machines/networks, and the
// failure mode with the R(sender) remap disabled.
#include <gtest/gtest.h>

#include "os/service_registry.hpp"

namespace namecoh {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : transport_(sim_, net_) {
    NetworkId n1 = net_.add_network("n1");
    NetworkId n2 = net_.add_network("n2");
    m1_ = net_.add_machine(n1, "m1");
    m2_ = net_.add_machine(n1, "m2");
    m3_ = net_.add_machine(n2, "m3");
    registry_ = std::make_unique<ServiceRegistry>(net_, transport_, m1_);
    client_ = std::make_unique<RegistryClient>(net_, transport_, sim_,
                                               *registry_);
    provider_ = net_.add_endpoint(m2_, "printer-daemon");
  }

  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  MachineId m1_, m2_, m3_;
  std::unique_ptr<ServiceRegistry> registry_;
  std::unique_ptr<RegistryClient> client_;
  EndpointId provider_;
};

TEST_F(RegistryTest, RegisterStoresRebasedPid) {
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  EXPECT_EQ(registry_->stats().registers, 1u);
  EXPECT_EQ(registry_->size(), 1u);
  // The stored pid must denote the provider in the *registry's* context.
  auto stored = registry_->stored_pid("printer");
  ASSERT_TRUE(stored.has_value());
  auto denoted = transport_.resolve_pid(registry_->endpoint(), *stored);
  ASSERT_TRUE(denoted.is_ok());
  EXPECT_EQ(denoted.value(), provider_);
}

TEST_F(RegistryTest, LookupFromEveryDistanceDenotesProvider) {
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  // Requesters on the registry's machine, the provider's machine, a third
  // machine in another network.
  for (MachineId m : {m1_, m2_, m3_}) {
    EndpointId requester = net_.add_endpoint(m, "requester");
    auto pid = client_->locate(requester, "printer");
    ASSERT_TRUE(pid.is_ok()) << net_.machine_label(m);
    auto denoted = transport_.resolve_pid(requester, pid.value());
    ASSERT_TRUE(denoted.is_ok());
    EXPECT_EQ(denoted.value(), provider_) << net_.machine_label(m);
  }
  EXPECT_EQ(registry_->stats().hits, 3u);
}

TEST_F(RegistryTest, LookupUnknownServiceMisses) {
  EndpointId requester = net_.add_endpoint(m1_, "requester");
  auto pid = client_->locate(requester, "no-such-service");
  EXPECT_FALSE(pid.is_ok());
  EXPECT_EQ(pid.code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_->stats().misses, 1u);
}

TEST_F(RegistryTest, UnregisterRemoves) {
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  ASSERT_TRUE(client_->withdraw(provider_, "printer").is_ok());
  sim_.run();
  EXPECT_EQ(registry_->size(), 0u);
  EndpointId requester = net_.add_endpoint(m1_, "requester");
  EXPECT_FALSE(client_->locate(requester, "printer").is_ok());
}

TEST_F(RegistryTest, ThirdPartyRegistration) {
  // An admin process on m3 registers the provider on m2: the pid it sends
  // is fully qualified from its vantage point, and still arrives meaning
  // the provider.
  EndpointId admin = net_.add_endpoint(m3_, "admin");
  ASSERT_TRUE(client_->announce(admin, "printer", provider_).is_ok());
  sim_.run();
  EndpointId requester = net_.add_endpoint(m2_, "requester");
  auto pid = client_->locate(requester, "printer");
  ASSERT_TRUE(pid.is_ok());
  EXPECT_EQ(transport_.resolve_pid(requester, pid.value()).value(),
            provider_);
}

TEST_F(RegistryTest, SurvivesProviderMachineRenumbering) {
  // The stored pid is (0,m,l) or (n,m,l) in the registry's context; if the
  // provider's machine is renumbered the stored pid goes stale — the §6
  // failure — until the provider re-registers.
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  ASSERT_TRUE(net_.renumber_machine(m2_).is_ok());
  EndpointId requester = net_.add_endpoint(m1_, "requester");
  auto stale = client_->locate(requester, "printer");
  // The lookup succeeds (the table still has an entry) but the pid no
  // longer denotes anything.
  if (stale.is_ok()) {
    EXPECT_FALSE(transport_.resolve_pid(requester, stale.value()).is_ok());
  }
  // Re-registration repairs it.
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  auto fresh = client_->locate(requester, "printer");
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(transport_.resolve_pid(requester, fresh.value()).value(),
            provider_);
}

TEST_F(RegistryTest, WithoutRemapLookupsLie) {
  // Disable the R(sender) remap: the registry stores the provider's pid
  // verbatim — (0,0,l) in the provider's context — which in the registry's
  // context means a process on the *registry's* machine.
  transport_.set_remap_embedded_pids(false);
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  EndpointId requester = net_.add_endpoint(m3_, "requester");
  auto pid = client_->locate(requester, "printer");
  if (pid.is_ok()) {
    auto denoted = transport_.resolve_pid(requester, pid.value());
    EXPECT_TRUE(!denoted.is_ok() || denoted.value() != provider_);
  }
}

TEST_F(RegistryTest, ReRegistrationOverwrites) {
  EndpointId provider2 = net_.add_endpoint(m3_, "printer-v2");
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  ASSERT_TRUE(client_->announce(provider2, "printer", provider2).is_ok());
  sim_.run();
  EndpointId requester = net_.add_endpoint(m1_, "requester");
  auto pid = client_->locate(requester, "printer");
  ASSERT_TRUE(pid.is_ok());
  EXPECT_EQ(transport_.resolve_pid(requester, pid.value()).value(),
            provider2);
}

TEST_F(RegistryTest, HelperEndpointsAreCleanedUp) {
  ASSERT_TRUE(client_->announce(provider_, "printer", provider_).is_ok());
  sim_.run();
  std::size_t before = net_.endpoint_count();
  EndpointId requester = net_.add_endpoint(m1_, "requester");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_->locate(requester, "printer").is_ok());
  }
  EXPECT_EQ(net_.endpoint_count(), before + 1);  // only `requester` remains
}

}  // namespace
}  // namespace namecoh
