// Tests for the wire codec: varints, byte strings, pids, typed payloads.
#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace namecoh {
namespace {

TEST(Varint, RoundTripBoundaries) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xFFFFFFFFULL,
        0xFFFFFFFFFFFFFFFFULL}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::span<const std::uint8_t> in(buf);
    auto back = get_varint(in);
    ASSERT_TRUE(back.is_ok()) << v;
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Varint, EncodingSizes) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  put_varint(buf, ~0ULL);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(Varint, TruncatedFails) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 300);
  buf.pop_back();
  std::span<const std::uint8_t> in(buf);
  EXPECT_FALSE(get_varint(in).is_ok());
}

TEST(Varint, OverlongFails) {
  // 11 continuation bytes exceed 64 bits.
  std::vector<std::uint8_t> buf(11, 0x80);
  buf.push_back(0x01);
  std::span<const std::uint8_t> in(buf);
  EXPECT_FALSE(get_varint(in).is_ok());
}

TEST(Bytes, RoundTrip) {
  for (std::string s : {std::string(""), std::string("hello"),
                        std::string(1000, 'x'), std::string("\0\x01\xff", 3)}) {
    std::vector<std::uint8_t> buf;
    put_bytes(buf, s);
    std::span<const std::uint8_t> in(buf);
    auto back = get_bytes(in);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), s);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Bytes, TruncatedPayloadFails) {
  std::vector<std::uint8_t> buf;
  put_bytes(buf, "hello");
  buf.resize(buf.size() - 2);
  std::span<const std::uint8_t> in(buf);
  EXPECT_FALSE(get_bytes(in).is_ok());
}

TEST(WirePid, RoundTrip) {
  for (Pid pid : {Pid::self(), Pid{0, 0, 5}, Pid{0, 300, 5},
                  Pid{70000, 300, 5}}) {
    std::vector<std::uint8_t> buf;
    put_pid(buf, pid);
    std::span<const std::uint8_t> in(buf);
    auto back = get_pid(in);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), pid);
  }
}

TEST(WirePid, FieldOutOfRangeFails) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0x1FFFFFFFFULL);  // > 32-bit addr
  put_varint(buf, 1);
  put_varint(buf, 1);
  std::span<const std::uint8_t> in(buf);
  EXPECT_FALSE(get_pid(in).is_ok());
}

TEST(Payload, BuildAndAccess) {
  Payload p;
  p.add_u64(42).add_string("hi").add_pid(Pid{1, 2, 3}).add_name("/a/b");
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.type_at(0), FieldType::kU64);
  EXPECT_EQ(p.u64_at(0), 42u);
  EXPECT_EQ(p.string_at(1), "hi");
  EXPECT_EQ(p.pid_at(2), (Pid{1, 2, 3}));
  EXPECT_EQ(p.name_at(3), "/a/b");
}

TEST(Payload, TypeMismatchThrows) {
  Payload p;
  p.add_u64(1);
  EXPECT_THROW((void)p.string_at(0), PreconditionError);
  EXPECT_THROW((void)p.pid_at(0), PreconditionError);
  EXPECT_THROW((void)p.u64_at(1), std::out_of_range);
}

TEST(Payload, PidAndNameIndices) {
  Payload p;
  p.add_pid(Pid{0, 0, 1}).add_u64(9).add_pid(Pid{0, 0, 2}).add_name("/x");
  EXPECT_EQ(p.pid_indices(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(p.name_indices(), (std::vector<std::size_t>{3}));
  p.set_pid(2, Pid{5, 5, 5});
  EXPECT_EQ(p.pid_at(2), (Pid{5, 5, 5}));
  p.set_name(3, "/y");
  EXPECT_EQ(p.name_at(3), "/y");
  EXPECT_THROW(p.set_pid(1, Pid{}), PreconditionError);
}

TEST(Payload, NameSliceTravelsAsTextAndReinterns) {
  const CompoundName sent = CompoundName::parse_relative("proj/src/main").value();
  Payload p;
  p.add_name(NameSlice{sent});
  EXPECT_EQ(p.name_at(0), "proj/src/main");

  auto back = Payload::decode(p.encode());
  ASSERT_TRUE(back.is_ok());
  auto compound = back.value().compound_at(0);
  ASSERT_TRUE(compound.is_ok());
  EXPECT_EQ(compound.value(), sent);

  Payload bad;
  bad.add_name("a//b");
  EXPECT_FALSE(bad.compound_at(0).is_ok());
}

TEST(Payload, EncodeDecodeRoundTrip) {
  Payload p;
  p.add_u64(0).add_u64(~0ULL).add_string("").add_string("data")
      .add_pid(Pid::self()).add_pid(Pid{9, 8, 7}).add_name("/vice/usr");
  auto bytes = p.encode();
  auto back = Payload::decode(bytes);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), p);
}

TEST(Payload, EmptyRoundTrip) {
  Payload p;
  auto back = Payload::decode(p.encode());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().size(), 0u);
}

TEST(Payload, DecodeRejectsGarbage) {
  // Unknown field type.
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1);
  buf.push_back(0x7E);  // bogus type tag
  EXPECT_FALSE(Payload::decode(buf).is_ok());
}

TEST(Payload, DecodeRejectsTruncation) {
  Payload p;
  p.add_string("hello world");
  auto bytes = p.encode();
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> prefix(bytes.data(), bytes.size() - cut);
    EXPECT_FALSE(Payload::decode(prefix).is_ok()) << "cut=" << cut;
  }
}

TEST(Payload, DecodeRejectsTrailingBytes) {
  Payload p;
  p.add_u64(1);
  auto bytes = p.encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(Payload::decode(bytes).is_ok());
}

// Property sweep: random payloads round-trip bit-exactly.
class PayloadRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PayloadRoundTrip, Random) {
  std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL + 1;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  Payload p;
  int fields = 1 + static_cast<int>(next() % 12);
  for (int i = 0; i < fields; ++i) {
    switch (next() % 4) {
      case 0:
        p.add_u64(next());
        break;
      case 1:
        p.add_string(std::string(next() % 40, static_cast<char>('a' + next() % 26)));
        break;
      case 2:
        p.add_pid(Pid{static_cast<Addr>(next() % 100),
                      static_cast<Addr>(next() % 100),
                      static_cast<Addr>(next() % 100)});
        break;
      case 3:
        p.add_name("/p" + std::to_string(next() % 1000));
        break;
    }
  }
  auto back = Payload::decode(p.encode());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadRoundTrip, ::testing::Range(1, 33));

}  // namespace
}  // namespace namecoh
