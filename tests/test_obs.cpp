// Tests for the observability subsystem: the metrics registry, the typed
// trace-event ring (wraparound + drop counting), span lifecycle and
// correlation-id attachment, and the chrome-trace exporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"

namespace namecoh {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry m;
  Counter& c1 = m.counter("x.count");
  Counter& c2 = m.counter("x.count");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.inc(4);
  EXPECT_EQ(m.counter_value("x.count"), 5u);
  EXPECT_EQ(m.counter_value("never.created"), 0u);
  EXPECT_FALSE(m.has("never.created"));
  EXPECT_TRUE(m.has("x.count"));
}

TEST(MetricsRegistry, PointersStayValidAcrossInserts) {
  MetricsRegistry m;
  Counter* first = &m.counter("a");
  // Flood the map; node-based storage must not move the first slot.
  for (int i = 0; i < 500; ++i) m.counter("c" + std::to_string(i));
  first->inc();
  EXPECT_EQ(m.counter_value("a"), 1u);
}

TEST(MetricsRegistry, GaugesAndHistograms) {
  MetricsRegistry m;
  m.gauge("depth").set(3.5);
  m.gauge("depth").add(0.5);
  EXPECT_EQ(m.gauge_value("depth"), 4.0);
  Histogram& h = m.histogram("lat", {1.0, 10.0});
  h.add(5.0);
  // Same name: boundaries of later calls are ignored, instrument shared.
  EXPECT_EQ(&m.histogram("lat", {99.0}), &h);
  EXPECT_EQ(m.size(), 2u);  // one gauge + one histogram
}

TEST(MetricsRegistry, JsonExportIsWellFormedAndSorted) {
  MetricsRegistry m;
  m.counter("b.count").inc(2);
  m.counter("a.count").inc(1);
  m.gauge("g").set(1.5);
  m.histogram("h", {1.0}).add(0.5);
  std::string json = m.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Sorted: a.count before b.count.
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
}

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

// --- Tracer: ring buffer ---------------------------------------------------

TEST(Tracer, DisabledIsNoOpEverywhere) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(1, EventKind::kSend, 42);
  t.record_in_span(1, 1, EventKind::kCacheHit);
  EXPECT_EQ(t.open_span(1, 7, "a/b"), 0u);
  t.bind_corr(0, 42);
  t.close_span(0, 2, true);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(t.spans().empty());
}

TEST(Tracer, RecordsTypedEventsWhenEnabled) {
  Tracer t;
  t.set_enabled(true);
  t.record(5, EventKind::kSend, 1, 10, 64);
  t.record(6, EventKind::kDeliver, 1, 20);
  auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, 5u);
  EXPECT_EQ(events[0].kind, EventKind::kSend);
  EXPECT_EQ(events[0].corr, 1u);
  EXPECT_EQ(events[0].a, 10u);
  EXPECT_EQ(events[0].b, 64u);
  EXPECT_EQ(t.count(EventKind::kSend), 1u);
  EXPECT_EQ(t.count(EventKind::kDrop), 0u);
}

TEST(Tracer, RingWrapsAndCountsDrops) {
  Tracer t;
  t.set_capacity(4);
  t.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(i, EventKind::kSend, /*corr=*/i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);  // oldest six overwritten, loss observable
  auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first and the survivors are the last four recorded.
  EXPECT_EQ(events[0].corr, 6u);
  EXPECT_EQ(events[3].corr, 9u);
}

TEST(Tracer, EventKindNamesCoverTheTaxonomy) {
  EXPECT_EQ(event_kind_name(EventKind::kSend), "send");
  EXPECT_EQ(event_kind_name(EventKind::kCacheMiss), "cache_miss");
  EXPECT_EQ(event_kind_name(EventKind::kServerAnswer), "server_answer");
  // Every kind below the sentinel has a non-empty, non-placeholder name.
  for (std::uint8_t k = 0;
       k < static_cast<std::uint8_t>(EventKind::kKindCount); ++k) {
    EXPECT_FALSE(event_kind_name(static_cast<EventKind>(k)).empty());
  }
}

// --- Tracer: spans and correlation routing ---------------------------------

TEST(Tracer, SpanLifecycle) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s = t.open_span(10, 7, "local/data.txt");
  ASSERT_NE(s, 0u);
  t.record_in_span(s, 11, EventKind::kCacheMiss, 7);
  t.bind_corr(s, 1001);
  t.record(12, EventKind::kSend, 1001, 3, 40);
  t.close_span(s, 20, true);

  const SpanRecord* span = t.span(s);
  ASSERT_NE(span, nullptr);
  EXPECT_FALSE(span->open);
  EXPECT_TRUE(span->ok);
  EXPECT_EQ(span->begin, 10u);
  EXPECT_EQ(span->end, 20u);
  EXPECT_EQ(span->start_entity, 7u);
  EXPECT_EQ(span->path, "local/data.txt");
  ASSERT_EQ(span->corrs.size(), 1u);
  EXPECT_EQ(span->corrs[0], 1001u);

  auto events = t.events_for_span(s);
  ASSERT_EQ(events.size(), 4u);  // begin, cache miss, send, end
  EXPECT_EQ(events.front().kind, EventKind::kSpanBegin);
  EXPECT_EQ(events[1].kind, EventKind::kCacheMiss);
  EXPECT_EQ(events[2].kind, EventKind::kSend);
  EXPECT_EQ(events.back().kind, EventKind::kSpanEnd);
}

TEST(Tracer, CorrRoutingDiesWithTheSpan) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s = t.open_span(1, 1, "x");
  t.bind_corr(s, 500);
  t.close_span(s, 2, false);
  // A straggler reply arriving after close: recorded, but span 0.
  t.record(3, EventKind::kDeliver, 500);
  auto events = t.events();
  EXPECT_EQ(events.back().span, 0u);
  EXPECT_EQ(t.events_for_span(s).size(), 2u);  // begin + end only
}

TEST(Tracer, TwoSpansRouteTheirOwnCorrs) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s1 = t.open_span(1, 1, "a");
  t.bind_corr(s1, 100);
  std::uint64_t s2 = t.open_span(2, 2, "b");
  t.bind_corr(s2, 200);
  t.record(3, EventKind::kSend, 100);
  t.record(4, EventKind::kSend, 200);
  t.close_span(s1, 5, true);
  t.close_span(s2, 6, true);
  auto e1 = t.events_for_span(s1);
  auto e2 = t.events_for_span(s2);
  ASSERT_EQ(e1.size(), 3u);
  ASSERT_EQ(e2.size(), 3u);
  EXPECT_EQ(e1[1].corr, 100u);
  EXPECT_EQ(e2[1].corr, 200u);
}

TEST(Tracer, SpanTableIsBounded) {
  Tracer t;
  t.set_enabled(true);
  for (std::size_t i = 0; i < Tracer::kMaxSpans + 10; ++i) {
    std::uint64_t s = t.open_span(i, i, "p");
    t.close_span(s, i + 1, true);
  }
  EXPECT_EQ(t.spans().size(), Tracer::kMaxSpans);
  EXPECT_EQ(t.spans_dropped(), 10u);
  // The oldest spans are the evicted ones.
  EXPECT_EQ(t.spans().front().start_entity, 10u);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s = t.open_span(1, 1, "x");
  t.bind_corr(s, 9);
  t.record(2, EventKind::kSend, 9);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

// --- Chrome-trace exporter -------------------------------------------------

TEST(TraceExport, EmitsCompleteEventsAndInstants) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s = t.open_span(100, 7, "local/data.txt");
  t.bind_corr(s, 1);
  t.record_in_span(s, 105, EventKind::kCacheMiss, 7);
  t.record(110, EventKind::kSend, 1, 3, 40);
  t.close_span(s, 200, true);

  std::string json = to_chrome_trace(t);
  // A complete ("X") slice for the span, duration 100 µs.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":100"), std::string::npos);
  EXPECT_NE(json.find("resolve local/data.txt"), std::string::npos);
  // Instants for the in-span events.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"send\""), std::string::npos);
  // Drop accounting travels in otherData.
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  // No trailing comma artifacts (cheap sanity on hand-rolled JSON).
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(TraceExport, WritesLoadableFile) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s = t.open_span(0, 1, "x");
  t.close_span(s, 10, true);
  const char* path = "test_obs_trace_out.json";
  ASSERT_TRUE(write_chrome_trace(t, path).is_ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), to_chrome_trace(t) + "\n");
  std::remove(path);
}

TEST(TraceExport, EscapesPathsInSpanNames) {
  Tracer t;
  t.set_enabled(true);
  std::uint64_t s = t.open_span(0, 1, "weird\"name");
  t.close_span(s, 1, false);
  std::string json = to_chrome_trace(t);
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

}  // namespace
}  // namespace namecoh
