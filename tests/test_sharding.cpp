// Sharded delegation fabric tests (docs/SHARDING.md): AuthorityMap shard
// registration and subtree delegation (precedence, self-delegation and
// cycle refusal), consistent-hash placement for flat namespaces, the v5
// reply-tail codec (glue records, malformed tails, old parsers), glue
// chases across chained delegations, and lease invalidation after a
// context migrates across a delegation boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/graph_ops.hpp"
#include "net/wire.hpp"
#include "ns/name_service.hpp"
#include "ns/shard_ring.hpp"

namespace namecoh {
namespace {

// --- AuthorityMap delegation --------------------------------------------------

class DelegationTest : public ::testing::Test {
 protected:
  DelegationTest() {
    NetworkId lan = net_.add_network("lan");
    ma_ = net_.add_machine(lan, "ma");
    mb_ = net_.add_machine(lan, "mb");
    mc_ = net_.add_machine(lan, "mc");
    root_ = graph_.add_context_object("root");
    tree_ = build_context_tree(graph_, root_, /*fanout=*/3, /*depth=*/3);
    s0_ = homes_.add_shard({ma_});
    s1_ = homes_.add_shard({mb_});
    s2_ = homes_.add_shard({mc_});
  }

  NamingGraph graph_;
  Internetwork net_;
  AuthorityMap homes_;
  MachineId ma_, mb_, mc_;
  EntityId root_;
  TreeBuildResult tree_;
  ShardId s0_, s1_, s2_;
};

TEST_F(DelegationTest, InstallDelegationClaimsUnownedSubtrees) {
  // Delegate one level-1 subtree while unowned, then the root: the
  // delegated region keeps its shard, the rest goes to the root's.
  const EntityId sub = tree_.levels[1][0];
  ASSERT_TRUE(homes_.install_delegation(graph_, sub, s1_).is_ok());
  ASSERT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
  EXPECT_EQ(homes_.shard_of(root_), s0_);
  EXPECT_EQ(homes_.shard_of(sub), s1_);
  EXPECT_EQ(homes_.shard_of(tree_.levels[1][1]), s0_);
  // A context deep inside the delegated subtree follows its shard.
  const EntityId inner = graph_.lookup(sub, Name("c0")).value();
  EXPECT_EQ(homes_.shard_of(inner), s1_);
  EXPECT_EQ(homes_.home_of(inner).value(), mb_);
  EXPECT_TRUE(homes_.is_primary(inner, mb_));
  EXPECT_FALSE(homes_.is_replica(inner, ma_));
}

TEST_F(DelegationTest, ExplicitHomesTakePrecedenceOverShards) {
  const EntityId sub = tree_.levels[1][0];
  homes_.set_home_subtree(graph_, sub, mc_);
  ASSERT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
  // The shard claim walked around the explicitly homed region…
  const EntityId inner = graph_.lookup(sub, Name("c1")).value();
  EXPECT_EQ(homes_.home_of(sub).value(), mc_);
  EXPECT_EQ(homes_.home_of(inner).value(), mc_);
  // …and the rest of the tree resolved to the shard's replica set.
  EXPECT_EQ(homes_.home_of(tree_.levels[1][1]).value(), ma_);
}

TEST_F(DelegationTest, SelfDelegationIsRefused) {
  ASSERT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
  Status again = homes_.install_delegation(graph_, root_, s0_);
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
}

TEST_F(DelegationTest, DelegationCycleIsRefusedAtInstallTime) {
  // root -> s0, then the sub subtree s0 -> s1 and on to s1 -> s2: the
  // recorded shard-level edges form the chain s0 -> s1 -> s2. Handing sub
  // back to s0 (or to s1) would let a glue chase re-enter an earlier
  // shard, so both installs must be refused.
  ASSERT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
  const EntityId sub = tree_.levels[1][0];
  ASSERT_TRUE(homes_.install_delegation(graph_, sub, s1_).is_ok());
  ASSERT_TRUE(homes_.install_delegation(graph_, sub, s2_).is_ok());
  EXPECT_EQ(homes_.install_delegation(graph_, sub, s0_).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(homes_.install_delegation(graph_, sub, s1_).code(),
            StatusCode::kInvalidArgument);
  // A sibling subtree of the chain stays delegable: s2 has no outgoing
  // delegation edges, so s0 -> s2 closes no loop.
  EXPECT_TRUE(
      homes_.install_delegation(graph_, tree_.levels[1][1], s2_).is_ok());
}

TEST_F(DelegationTest, HashDelegationPlacesEveryChildByRing) {
  ShardRing ring;
  ring.add_shard(s0_);
  ring.add_shard(s1_);
  ring.add_shard(s2_);
  ASSERT_TRUE(homes_.delegate_children_by_hash(graph_, root_, ring).is_ok());
  for (EntityId child : tree_.levels[1]) {
    EXPECT_EQ(homes_.shard_of(child), ring.shard_for(child));
  }
  // Idempotent: re-running places nothing new and refuses nothing.
  EXPECT_TRUE(homes_.delegate_children_by_hash(graph_, root_, ring).is_ok());
}

// --- ShardRing ----------------------------------------------------------------

TEST(ShardRingTest, SpreadsKeysRoughlyEvenly) {
  ShardRing ring;
  for (ShardId s = 0; s < 8; ++s) ring.add_shard(s);
  std::unordered_map<ShardId, std::size_t> counts;
  for (std::uint64_t id = 0; id < 8000; ++id) {
    counts[ring.shard_for(EntityId(id))]++;
  }
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, 300u) << "shard " << shard << " underloaded";
    EXPECT_LT(count, 2500u) << "shard " << shard << " overloaded";
  }
}

TEST(ShardRingTest, AddingAShardRemapsOnlyItsSlice) {
  ShardRing before;
  for (ShardId s = 0; s < 8; ++s) before.add_shard(s);
  ShardRing after;
  for (ShardId s = 0; s < 9; ++s) after.add_shard(s);
  std::size_t moved = 0;
  for (std::uint64_t id = 0; id < 9000; ++id) {
    const ShardId was = before.shard_for(EntityId(id));
    const ShardId now = after.shard_for(EntityId(id));
    if (was != now) {
      ++moved;
      // Every remapped key lands on the new shard, never between old ones.
      EXPECT_EQ(now, 8u);
    }
  }
  // ~1/9th of the keyspace, with generous slack for hash variance.
  EXPECT_GT(moved, 200u);
  EXPECT_LT(moved, 2500u);
}

TEST(ShardRingTest, AddShardIsIdempotent) {
  ShardRing ring;
  ring.add_shard(3);
  const std::size_t points = ring.point_count();
  ring.add_shard(3);
  EXPECT_EQ(ring.point_count(), points);
  EXPECT_EQ(ring.shard_count(), 1u);
}

// --- v5 reply-tail codec ------------------------------------------------------

TEST(ReplyTailTest, EmptyTailIsValid) {
  Payload payload;
  ReplyTail tail = parse_reply_tail(payload, 0, false, false);
  EXPECT_TRUE(tail.valid);
  EXPECT_TRUE(tail.replicas.empty());
  EXPECT_TRUE(tail.glue.empty());
}

TEST(ReplyTailTest, GlueRecordsRoundTrip) {
  Payload payload;
  payload.add_u64(1);  // replica tail: one server
  payload.add_pid(Pid{1, 2, 3});
  payload.add_u64(7);
  payload.add_u64(2);  // two glue records
  for (std::uint64_t g = 0; g < 2; ++g) {
    payload.add_u64(100 + g);  // delegated context
    payload.add_u64(g);        // owning shard
    payload.add_u64(1);        // one server
    payload.add_pid(Pid{4, 5, 6});
    payload.add_u64(20 + g);
  }
  ReplyTail tail = parse_reply_tail(payload, 0, false, true);
  ASSERT_TRUE(tail.valid);
  ASSERT_EQ(tail.replicas.size(), 1u);
  EXPECT_EQ(tail.replicas[0].machine, 7u);
  ASSERT_EQ(tail.glue.size(), 2u);
  EXPECT_EQ(tail.glue[0].ctx, 100u);
  EXPECT_EQ(tail.glue[1].shard, 1u);
  ASSERT_EQ(tail.glue[1].servers.size(), 1u);
  EXPECT_EQ(tail.glue[1].servers[0].machine, 21u);
}

TEST(ReplyTailTest, TruncatedGlueInvalidatesTheWholeTail) {
  Payload payload;
  payload.add_u64(0);  // replica tail: none
  payload.add_u64(2);  // claims two glue records…
  payload.add_u64(100);
  payload.add_u64(0);
  payload.add_u64(1);  // …but the first record's server list is cut off
  ReplyTail tail = parse_reply_tail(payload, 0, false, true);
  EXPECT_FALSE(tail.valid);
  EXPECT_TRUE(tail.replicas.empty());
  EXPECT_TRUE(tail.glue.empty());
}

TEST(ReplyTailTest, OldParserIgnoresAGlueTailItNeverAskedFor) {
  // A v3-era parser (expect_glue = false) meeting a glue tail must not
  // half-trust the reply: the strict exact-consumption check discards the
  // whole tail, replicas included, and the client falls back to the reply's
  // fixed fields.
  Payload payload;
  payload.add_u64(1);
  payload.add_pid(Pid{1, 2, 3});
  payload.add_u64(7);
  payload.add_u64(1);  // glue tail the old parser does not understand
  payload.add_u64(100);
  payload.add_u64(0);
  payload.add_u64(0);
  ReplyTail tail = parse_reply_tail(payload, 0, false, false);
  EXPECT_FALSE(tail.valid);
  EXPECT_TRUE(tail.replicas.empty());
}

// --- Glue chases and shard-aware routing --------------------------------------

class ShardedResolutionTest : public ::testing::Test {
 protected:
  ShardedResolutionTest()
      : transport_(sim_, net_), service_(graph_, net_, transport_, homes_) {
    NetworkId lan = net_.add_network("lan");
    ma_ = net_.add_machine(lan, "ma");
    mb_ = net_.add_machine(lan, "mb");
    mc_ = net_.add_machine(lan, "mc");
    mclient_ = net_.add_machine(lan, "mclient");
    root_ = graph_.add_context_object("root");
    tree_ = build_context_tree(graph_, root_, /*fanout=*/2, /*depth=*/3);
    s0_ = homes_.add_shard({ma_});
    s1_ = homes_.add_shard({mb_});
    s2_ = homes_.add_shard({mc_});
    // Chained delegation, installed while unowned (outside-in): root on
    // s0, the c0 subtree on s1, and c0/c0 — inside the already-delegated
    // region — on s2. A full-path resolve crosses two delegation
    // boundaries.
    x_ = tree_.levels[1][0];
    y_ = tree_.levels[2][0];
    EXPECT_TRUE(homes_.install_delegation(graph_, y_, s2_).is_ok());
    EXPECT_TRUE(homes_.install_delegation(graph_, x_, s1_).is_ok());
    EXPECT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
    leaf_ = graph_.add_data_object("leaf");
    EXPECT_TRUE(graph_.bind(y_, Name("f"), leaf_).is_ok());
    service_.add_server(ma_);
    service_.add_server(mb_);
    service_.add_server(mc_);
    service_.add_server(mclient_);
  }

  std::uint64_t shard_counter(const std::string& what) const {
    return transport_.metrics().counter_value("ns.shard." + what);
  }

  NamingGraph graph_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  AuthorityMap homes_;
  NameService service_;
  MachineId ma_, mb_, mc_, mclient_;
  EntityId root_, x_, y_, leaf_;
  TreeBuildResult tree_;
  ShardId s0_, s1_, s2_;
};

TEST_F(ShardedResolutionTest, TwoHopGlueChaseAcrossChainedDelegations) {
  ResolverClientConfig cfg;
  cfg.shard_routing = true;
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "c", cfg);
  auto result = client.resolve(root_, CompoundName::relative("c0/c0/f"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), leaf_);
  // Two referrals, each carrying glue for a shard that is itself a
  // delegate: s0's referral for x (owned s1), then s1's referral for y
  // (owned s2). Both next hops were routed by the glue just learned, and
  // both crossed a shard boundary.
  EXPECT_EQ(shard_counter("delegations_chased"), 2u);
  EXPECT_EQ(shard_counter("glue_hits"), 2u);
  EXPECT_EQ(shard_counter("cross_shard_hops"), 2u);
  EXPECT_EQ(client.snapshot()["referrals_followed"], 2u);
}

TEST_F(ShardedResolutionTest, GlueRoutingIsOffWithoutTheConfigFlag) {
  // A v3/v4 client resolving the same name: no glue requested, none
  // parsed, the chase still works through reply.next_server.
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "old");
  auto result = client.resolve(root_, CompoundName::relative("c0/c0/f"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), leaf_);
  EXPECT_EQ(shard_counter("delegations_chased"), 0u);
  EXPECT_EQ(shard_counter("glue_hits"), 0u);
}

TEST_F(ShardedResolutionTest, LeaseInvalidationSurvivesMigration) {
  service_.set_lease_policy(5000);
  ResolverClientConfig cfg;
  cfg.shard_routing = true;
  cfg.lease_coherence = true;
  cfg.cache_ttl = 100000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "c", cfg);
  const CompoundName target = CompoundName::relative("c0/c0/f");
  auto first = client.resolve(root_, target);
  ASSERT_TRUE(first.is_ok());
  ASSERT_EQ(first.value(), leaf_);

  // Migrate y across a delegation boundary: s2 hands it back to its
  // delegator-side neighbour s1. The lease the client holds was granted
  // by s2's machine; the rebind after the migration must still reach that
  // lease table and push the invalidation.
  ASSERT_TRUE(homes_.install_delegation(graph_, y_, s1_).is_ok());
  ASSERT_EQ(homes_.shard_of(y_), s1_);
  EntityId leaf2 = graph_.add_data_object("leaf2");
  ASSERT_TRUE(graph_.unbind(y_, Name("f")).is_ok());
  ASSERT_TRUE(graph_.bind(y_, Name("f"), leaf2).is_ok());
  service_.publish_update(y_);
  sim_.run();

  EXPECT_GE(client.snapshot()["invalidates_received"], 1u);
  auto second = client.resolve(root_, target);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), leaf2);
}

}  // namespace
}  // namespace namecoh
