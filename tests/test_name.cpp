// Tests for Name and CompoundName (§2 N and N+), path syntax conventions.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/name.hpp"

namespace namecoh {
namespace {

TEST(Name, ValidNames) {
  EXPECT_TRUE(Name::is_valid("a"));
  EXPECT_TRUE(Name::is_valid("passwd"));
  EXPECT_TRUE(Name::is_valid("."));
  EXPECT_TRUE(Name::is_valid(".."));
  EXPECT_TRUE(Name::is_valid("/"));  // reserved root binding
  EXPECT_TRUE(Name::is_valid("..."));  // DCE global directory name
  EXPECT_TRUE(Name::is_valid(".:"));   // DCE cell name
  EXPECT_TRUE(Name::is_valid("with space"));
}

TEST(Name, InvalidNames) {
  EXPECT_FALSE(Name::is_valid(""));
  EXPECT_FALSE(Name::is_valid("a/b"));
  EXPECT_FALSE(Name::is_valid("/a"));
  EXPECT_FALSE(Name::is_valid(std::string("a\0b", 3)));
}

TEST(Name, ConstructorThrowsOnInvalid) {
  EXPECT_THROW(Name("a/b"), PreconditionError);
  EXPECT_THROW(Name(""), PreconditionError);
  EXPECT_NO_THROW(Name("ok"));
}

TEST(Name, MakeReturnsError) {
  auto bad = Name::make("a/b");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  auto good = Name::make("fine");
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value().text(), "fine");
}

TEST(Name, Classification) {
  EXPECT_TRUE(Name("/").is_root());
  EXPECT_TRUE(Name(".").is_cwd());
  EXPECT_TRUE(Name("..").is_parent());
  EXPECT_FALSE(Name("x").is_root());
}

TEST(Name, Ordering) {
  EXPECT_LT(Name("a"), Name("b"));
  EXPECT_EQ(Name("a"), Name("a"));
}

TEST(CompoundName, ParseAbsolute) {
  CompoundName n = CompoundName::path("/a/b");
  ASSERT_EQ(n.size(), 3u);
  EXPECT_TRUE(n.at(0).is_root());
  EXPECT_EQ(n.at(1).text(), "a");
  EXPECT_EQ(n.at(2).text(), "b");
  EXPECT_TRUE(n.is_absolute());
}

TEST(CompoundName, ParseRelativeGetsCwdPrefix) {
  CompoundName n = CompoundName::path("a/b");
  ASSERT_EQ(n.size(), 3u);
  EXPECT_TRUE(n.at(0).is_cwd());
  EXPECT_FALSE(n.is_absolute());
}

TEST(CompoundName, ParseRootAlone) {
  CompoundName n = CompoundName::path("/");
  ASSERT_EQ(n.size(), 1u);
  EXPECT_TRUE(n.at(0).is_root());
}

TEST(CompoundName, ParseDotAlone) {
  CompoundName n = CompoundName::path(".");
  ASSERT_EQ(n.size(), 1u);
  EXPECT_TRUE(n.at(0).is_cwd());
}

TEST(CompoundName, ParseDotDot) {
  CompoundName n = CompoundName::path("../x");
  ASSERT_EQ(n.size(), 3u);
  EXPECT_TRUE(n.at(0).is_cwd());
  EXPECT_TRUE(n.at(1).is_parent());
  EXPECT_EQ(n.at(2).text(), "x");
}

TEST(CompoundName, ParseNewcastleDotDotAboveRoot) {
  CompoundName n = CompoundName::path("/../m2/x");
  ASSERT_EQ(n.size(), 4u);
  EXPECT_TRUE(n.at(0).is_root());
  EXPECT_TRUE(n.at(1).is_parent());
  EXPECT_EQ(n.at(2).text(), "m2");
}

TEST(CompoundName, ParseErrors) {
  EXPECT_FALSE(CompoundName::parse_path("").is_ok());
  EXPECT_FALSE(CompoundName::parse_path("a//b").is_ok());
  EXPECT_FALSE(CompoundName::parse_path("/a/").is_ok());
  EXPECT_THROW(CompoundName::path(""), PreconditionError);
}

TEST(CompoundName, ParseRelativeNoDotPrefix) {
  CompoundName n = CompoundName::relative("a/p");
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n.at(0).text(), "a");
  EXPECT_EQ(n.at(1).text(), "p");
}

TEST(CompoundName, ParseRelativeRejectsAbsolute) {
  EXPECT_FALSE(CompoundName::parse_relative("/a").is_ok());
  EXPECT_FALSE(CompoundName::parse_relative("").is_ok());
  EXPECT_FALSE(CompoundName::parse_relative("a//b").is_ok());
}

TEST(CompoundName, ToPathRoundTrip) {
  for (const char* path : {"/a/b", "/", "a/b", "/bin/cc", "/../m1/x",
                           "../up", "home/me/notes.txt"}) {
    EXPECT_EQ(CompoundName::path(path).to_path(), path) << path;
  }
  // "." is idempotent too.
  EXPECT_EQ(CompoundName::path(".").to_path(), ".");
}

TEST(CompoundName, RestAndParent) {
  CompoundName n = CompoundName::path("/a/b");
  EXPECT_EQ(n.rest().to_path(), "a/b");  // ⟨a,b⟩ renders as "a/b"
  EXPECT_EQ(n.parent().to_path(), "/a");
  CompoundName single = CompoundName::path("/");
  EXPECT_THROW(single.rest(), PreconditionError);
  EXPECT_THROW(single.parent(), PreconditionError);
}

TEST(CompoundName, AppendAndChild) {
  CompoundName base = CompoundName::path("/a");
  CompoundName suffix = CompoundName::relative("b/c");
  EXPECT_EQ(base.append(suffix).to_path(), "/a/b/c");
  EXPECT_EQ(base.child(Name("z")).to_path(), "/a/z");
}

TEST(CompoundName, HasPrefix) {
  CompoundName n = CompoundName::path("/vice/usr/lib");
  EXPECT_TRUE(n.has_prefix(CompoundName::path("/vice")));
  EXPECT_TRUE(n.has_prefix(n));
  EXPECT_FALSE(n.has_prefix(CompoundName::path("/usr")));
  EXPECT_FALSE(CompoundName::path("/vice").has_prefix(n));
}

TEST(CompoundName, RebasePrefixMapping) {
  // §7: /users/ann in org2, referred from org1 as /org2/users/ann.
  CompoundName local = CompoundName::path("/users/ann");
  auto mapped = local.rebase(CompoundName::path("/users"),
                             CompoundName::path("/org2/users"));
  ASSERT_TRUE(mapped.is_ok());
  EXPECT_EQ(mapped.value().to_path(), "/org2/users/ann");
}

TEST(CompoundName, RebaseNonPrefixFails) {
  CompoundName n = CompoundName::path("/a/b");
  EXPECT_FALSE(
      n.rebase(CompoundName::path("/x"), CompoundName::path("/y")).is_ok());
}

TEST(CompoundName, OrderingAndEquality) {
  EXPECT_EQ(CompoundName::path("/a"), CompoundName::path("/a"));
  EXPECT_NE(CompoundName::path("/a"), CompoundName::path("/b"));
  EXPECT_LT(CompoundName::path("/a"), CompoundName::path("/a/b"));
}

TEST(CompoundName, HashDistinguishes) {
  std::unordered_set<CompoundName> set;
  set.insert(CompoundName::path("/a/b"));
  set.insert(CompoundName::path("/a/c"));
  set.insert(CompoundName::path("a/b"));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(CompoundName::path("/a/b")));
}

TEST(CompoundName, EmptyVectorThrows) {
  EXPECT_THROW(CompoundName(std::vector<Name>{}), PreconditionError);
}

// Property sweep: parse(to_path(x)) == x for machine-generated paths.
class PathRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PathRoundTrip, ParseFormatIdempotent) {
  int seed = GetParam();
  // Generate a pseudo-random path from the seed (deterministic).
  std::string path = (seed % 2 == 0) ? "/" : "";
  int parts = 1 + seed % 4;
  for (int i = 0; i < parts; ++i) {
    if (i > 0 || path == "/") {
      if (path.back() != '/') path += '/';
    }
    path += "n" + std::to_string((seed * 31 + i * 7) % 100);
  }
  CompoundName parsed = CompoundName::path(path);
  EXPECT_EQ(parsed.to_path(), path);
  EXPECT_EQ(CompoundName::path(parsed.to_path()), parsed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathRoundTrip, ::testing::Range(0, 40));

}  // namespace
}  // namespace namecoh
