// The determinism gate for the execution-policy seam (docs/PARALLELISM.md):
//   * with the par engine compiled in but unselected, same-seed seq runs
//     produce byte-identical metric snapshots and trace histories;
//   * par runs produce identical result *vectors* (results[i] answers
//     queries[i]) and byte-identical merged metric snapshots;
// plus multi-threaded stress for the pieces the seam leans on — the
// sharded NameTable, per-worker MetricsShards, Tracer::absorb, the
// WorkerPool barrier, and the pure-compute fence.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/interner.hpp"
#include "exec/batch.hpp"
#include "obs/metrics_shard.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"
#include "workload/parallel.hpp"

namespace namecoh {
namespace {

// --- fixtures ---------------------------------------------------------------

// A complete binary naming tree of the given depth with one "leaf" data
// object under each bottom directory; `leaves` holds the full-depth paths.
struct TreeFixture {
  NamingGraph graph;
  EntityId root;
  std::vector<CompoundName> leaves;

  explicit TreeFixture(std::size_t depth, std::size_t fanout = 2) {
    root = graph.add_context_object("root");
    build(root, {}, depth, fanout);
  }

  void build(EntityId dir, std::vector<Name> prefix, std::size_t depth,
             std::size_t fanout) {
    if (depth == 0) {
      EntityId file = graph.add_data_object("leaf");
      Name name("leaf");
      ASSERT_TRUE(graph.bind(dir, name, file).is_ok());
      prefix.push_back(name);
      leaves.emplace_back(prefix);
      return;
    }
    for (std::size_t i = 0; i < fanout; ++i) {
      Name name("d" + std::to_string(i));
      EntityId child = graph.add_context_object(name.text());
      ASSERT_TRUE(graph.bind(dir, name, child).is_ok());
      auto next = prefix;
      next.push_back(name);
      build(child, std::move(next), depth - 1, fanout);
    }
  }

  // Queries: every leaf from the root, plus one miss to exercise the
  // failed-resolution path. BatchQuery borrows `miss`, so the caller must
  // keep it alive past the resolve_batch call (the BatchQuery contract).
  std::vector<exec::BatchQuery> queries(const CompoundName& miss) const {
    std::vector<exec::BatchQuery> out;
    out.reserve(leaves.size() + 1);
    for (const auto& name : leaves) {
      out.push_back(exec::BatchQuery{root, name});
    }
    out.push_back(exec::BatchQuery{root, miss});
    return out;
  }
};

std::string render_events(const Tracer& tracer) {
  std::ostringstream os;
  for (const TraceEvent& event : tracer.events()) {
    os << event.at << ' ' << static_cast<int>(event.kind) << ' '
       << event.span << ' ' << event.corr << ' ' << event.a << ' '
       << event.b << '\n';
  }
  return os.str();
}

std::string render_spans(const Tracer& tracer) {
  std::ostringstream os;
  for (const SpanRecord& span : tracer.spans()) {
    os << span.id << ' ' << span.begin << ' ' << span.end << ' '
       << span.open << ' ' << span.ok << ' ' << span.start_entity << ' '
       << span.path << '\n';
  }
  return os.str();
}

void expect_same_resolutions(const std::vector<Resolution>& a,
                             const std::vector<Resolution>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code()) << "query " << i;
    EXPECT_EQ(a[i].entity, b[i].entity) << "query " << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << "query " << i;
    EXPECT_EQ(a[i].trail, b[i].trail) << "query " << i;
  }
}

// --- WorkerPool -------------------------------------------------------------

TEST(WorkerPool, RunsBodyOncePerWorker) {
  WorkerPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t w) { hits[w].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(WorkerPool, ReusableAcrossGenerations) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(WorkerPool, ClampsToAtLeastOneWorker) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  bool ran = false;
  pool.run([&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(WorkerPool, RethrowsWorkerException) {
  WorkerPool pool(2);
  EXPECT_THROW(pool.run([](std::size_t w) {
                 if (w == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool survives a throwing generation.
  std::atomic<int> total{0};
  pool.run([&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 2);
}

TEST(WorkerPool, HardwareWorkersNeverZero) {
  EXPECT_GE(WorkerPool::hardware_workers(), 1u);
}

// --- sharded NameTable under real threads -----------------------------------

TEST(InternerConcurrency, SameTextSameIdAcrossThreads) {
  NameTable& table = NameTable::global();
  const std::size_t base = table.size();
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kNames = 500;
  std::vector<std::vector<NameId>> ids(kWorkers,
                                       std::vector<NameId>(kNames));
  WorkerPool pool(kWorkers);
  // Every worker interns the same vocabulary in a different order, racing
  // on every shard.
  pool.run([&](std::size_t w) {
    for (std::size_t i = 0; i < kNames; ++i) {
      const std::size_t pick = (i * 31 + w * 7) % kNames;
      ids[w][pick] = table.intern("atom-" + std::to_string(pick));
    }
  });
  // Agreement: same text -> same id everywhere.
  for (std::size_t i = 0; i < kNames; ++i) {
    for (std::size_t w = 1; w < kWorkers; ++w) {
      EXPECT_EQ(ids[w][i], ids[0][i]) << "atom-" << i;
    }
  }
  // Density: exactly kNames fresh ids, contiguous above the base.
  EXPECT_EQ(table.size(), base + kNames);
  std::set<NameId> unique(ids[0].begin(), ids[0].end());
  EXPECT_EQ(unique.size(), kNames);
  for (NameId id : unique) {
    EXPECT_GE(id, base);
    EXPECT_LT(id, base + kNames);
  }
  // Lock-free read path round-trips while another thread keeps interning.
  pool.run([&](std::size_t w) {
    if (w == 0) {
      for (std::size_t i = 0; i < kNames; ++i) {
        table.intern("late-" + std::to_string(i));
      }
      return;
    }
    for (std::size_t i = 0; i < kNames; ++i) {
      EXPECT_EQ(table.text(ids[0][i]), "atom-" + std::to_string(i));
    }
  });
}

TEST(InternerConcurrency, FindNeverMints) {
  NameTable& table = NameTable::global();
  const NameId known = table.intern("known");
  const std::size_t size = table.size();
  WorkerPool pool(4);
  pool.run([&](std::size_t w) {
    for (int i = 0; i < 200; ++i) {
      auto hit = table.find("known");
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(*hit, known);
      EXPECT_FALSE(table.find("ghost-" + std::to_string(w)).has_value());
    }
  });
  EXPECT_EQ(table.size(), size);
}

// --- MetricsShard -----------------------------------------------------------

TEST(MetricsShard, MergeFoldsAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("c").inc(5);
  MetricsShard shard;
  shard.counter("c").inc(3);
  shard.gauge("g").add(2.5);
  shard.histogram("h", {1, 10}).add(4);
  shard.merge_into(registry);
  EXPECT_EQ(registry.counter("c").value(), 8u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 2.5);
  EXPECT_EQ(registry.histogram("h", {1, 10}).total(), 1u);
  // merge_into clears: a second merge is a no-op.
  EXPECT_TRUE(shard.empty());
  shard.merge_into(registry);
  EXPECT_EQ(registry.counter("c").value(), 8u);
}

TEST(MetricsShard, PerWorkerShardsMergeExactly) {
  constexpr std::size_t kWorkers = 6;
  constexpr std::uint64_t kIncs = 10000;
  std::vector<MetricsShard> shards(kWorkers);
  WorkerPool pool(kWorkers);
  pool.run([&](std::size_t w) {
    Counter& hits = shards[w].counter("stress.hits");
    Histogram& lat = shards[w].histogram("stress.lat", {1, 2, 4});
    for (std::uint64_t i = 0; i < kIncs; ++i) {
      hits.inc();
      lat.add(static_cast<double>(i % 5));
    }
  });
  MetricsRegistry registry;
  for (MetricsShard& shard : shards) shard.merge_into(registry);
  EXPECT_EQ(registry.counter("stress.hits").value(), kWorkers * kIncs);
  EXPECT_EQ(registry.histogram("stress.lat", {1, 2, 4}).total(),
            kWorkers * kIncs);
}

// --- Tracer::absorb ---------------------------------------------------------

TEST(TracerAbsorb, RemapsSpansAndReattachesEvents) {
  Tracer main;
  main.set_enabled(true);
  const std::uint64_t home = main.open_span(0, 1, "home");
  main.close_span(home, 0, true);

  Tracer worker;
  worker.set_enabled(true);
  const std::uint64_t span = worker.open_span(0, 42, "d0/leaf");
  worker.record_in_span(span, 0, EventKind::kResolveStep, 7, 0);
  worker.record_in_span(span, 0, EventKind::kResolveStep, 8, 1);
  worker.close_span(span, 0, true);

  main.absorb(worker);
  ASSERT_EQ(main.spans().size(), 2u);
  const SpanRecord& absorbed = main.spans().back();
  EXPECT_NE(absorbed.id, home);
  EXPECT_EQ(absorbed.path, "d0/leaf");
  EXPECT_EQ(absorbed.start_entity, 42u);
  EXPECT_TRUE(absorbed.ok);
  // Events re-attached under the fresh id.
  const auto steps = main.events_for_span(absorbed.id);
  std::size_t resolve_steps = 0;
  for (const TraceEvent& event : steps) {
    if (event.kind == EventKind::kResolveStep) ++resolve_steps;
  }
  EXPECT_EQ(resolve_steps, 2u);
  // The worker tracer is drained.
  EXPECT_TRUE(worker.spans().empty());
  EXPECT_EQ(worker.events().size(), 0u);
}

TEST(TracerAbsorb, DisabledTracersAreNoOps) {
  Tracer main;  // disabled
  Tracer worker;
  worker.set_enabled(true);
  const std::uint64_t span = worker.open_span(0, 1, "p");
  worker.close_span(span, 0, true);
  main.absorb(worker);
  EXPECT_TRUE(main.spans().empty());
  // Disabled *source* is also a no-op.
  Tracer enabled;
  enabled.set_enabled(true);
  Tracer off;
  enabled.absorb(off);
  EXPECT_TRUE(enabled.spans().empty());
}

// --- pure-compute fence -----------------------------------------------------

TEST(PureComputeSection, BlocksSchedulingInsideTheFence) {
  Simulator sim;
  sim.schedule_in(5, [] {});
  {
    PureComputeSection fence(&sim);
    EXPECT_TRUE(sim.in_pure_section());
    EXPECT_THROW(sim.schedule_in(1, [] {}), PreconditionError);
    EXPECT_THROW(sim.schedule_at(10, [] {}), PreconditionError);
    EXPECT_THROW(sim.run_until(100), PreconditionError);
    EXPECT_THROW(sim.reset(), PreconditionError);
    {
      PureComputeSection nested(&sim);
      EXPECT_TRUE(sim.in_pure_section());
    }
    // Still fenced: sections nest.
    EXPECT_TRUE(sim.in_pure_section());
  }
  EXPECT_FALSE(sim.in_pure_section());
  // The queue is intact once the fence lifts.
  EXPECT_EQ(sim.run_until(100), 1u);
}

TEST(PureComputeSection, NullSimulatorIsTolerated) {
  PureComputeSection fence(nullptr);  // must not crash
  SUCCEED();
}

// --- the batch engine: seq --------------------------------------------------

TEST(BatchResolve, SeqMatchesDirectResolves) {
  TreeFixture tree(4);
  const CompoundName miss = CompoundName::relative("d0/ghost");
  const auto queries = tree.queries(miss);
  exec::BatchOutcome batch = exec::resolve_batch(
      exec::SeqPolicy{}, tree.graph, {queries.data(), queries.size()});
  ASSERT_EQ(batch.results.size(), queries.size());
  EXPECT_EQ(batch.workers, 1u);
  EXPECT_EQ(batch.ok, queries.size() - 1);
  EXPECT_EQ(batch.failed, 1u);
  std::vector<Resolution> direct;
  direct.reserve(queries.size());
  for (const auto& query : queries) {
    direct.push_back(resolve_from(tree.graph, query.start, query.name));
  }
  expect_same_resolutions(batch.results, direct);
}

TEST(BatchResolve, PolicyLessDefaultIsSeqInThisBuild) {
  // The determinism gate runs with the par engine compiled in but the
  // compile-time default left sequential.
  EXPECT_FALSE(exec::kDefaultIsParallel);
  TreeFixture tree(3);
  const CompoundName miss = CompoundName::relative("nope");
  const auto queries = tree.queries(miss);
  exec::BatchOutcome batch =
      exec::resolve_batch(tree.graph, {queries.data(), queries.size()});
  EXPECT_EQ(batch.workers, 1u);
}

// One full seq run: metrics + tracing + fenced simulator. Returns the
// observable history as strings so runs can be compared byte-for-byte.
struct SeqRunSnapshot {
  std::string metrics;
  std::string events;
  std::string spans;
  std::vector<Resolution> results;
};

SeqRunSnapshot seq_run(std::uint64_t seed) {
  TreeFixture tree(4);
  Rng rng(seed);
  std::vector<exec::BatchQuery> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(
        exec::BatchQuery{tree.root, rng.pick(tree.leaves)});
  }
  Simulator sim;
  MetricsRegistry registry;
  Tracer tracer;
  tracer.set_enabled(true);
  exec::BatchOptions options;
  options.metrics = &registry;
  options.tracer = &tracer;
  options.sim = &sim;
  exec::BatchOutcome batch = exec::resolve_batch(
      exec::SeqPolicy{}, tree.graph, {queries.data(), queries.size()},
      options);
  SeqRunSnapshot snap;
  snap.metrics = registry.to_json();
  snap.events = render_events(tracer);
  snap.spans = render_spans(tracer);
  snap.results = std::move(batch.results);
  return snap;
}

TEST(DeterminismGate, SameSeedSeqRunsAreByteIdentical) {
  SeqRunSnapshot first = seq_run(1234);
  SeqRunSnapshot second = seq_run(1234);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.spans, second.spans);
  expect_same_resolutions(first.results, second.results);
  // Different seeds genuinely change the history (the comparison above is
  // not vacuous).
  SeqRunSnapshot other = seq_run(99);
  EXPECT_NE(first.events, other.events);
}

// --- the batch engine: par --------------------------------------------------

TEST(BatchResolve, ParMatchesSeqResultVector) {
  TreeFixture tree(5);
  const CompoundName miss = CompoundName::relative("d1/ghost");
  const auto queries = tree.queries(miss);
  exec::BatchOutcome seq = exec::resolve_batch(
      exec::SeqPolicy{}, tree.graph, {queries.data(), queries.size()});
  WorkerPool pool(4);
  exec::BatchOutcome par = exec::resolve_batch(
      exec::ParPolicy{&pool, 0}, tree.graph,
      {queries.data(), queries.size()});
  EXPECT_EQ(par.workers, 4u);
  EXPECT_EQ(par.ok, seq.ok);
  EXPECT_EQ(par.failed, seq.failed);
  // Stronger than order-insensitive: the same vector, position by position.
  expect_same_resolutions(par.results, seq.results);
}

TEST(BatchResolve, ParMetricsSnapshotMatchesSeq) {
  TreeFixture tree(5);
  const CompoundName miss = CompoundName::relative("miss");
  const auto queries = tree.queries(miss);
  MetricsRegistry seq_registry;
  exec::BatchOptions seq_options;
  seq_options.metrics = &seq_registry;
  exec::resolve_batch(exec::SeqPolicy{}, tree.graph,
                      {queries.data(), queries.size()}, seq_options);

  WorkerPool pool(3);
  MetricsRegistry par_registry;
  exec::BatchOptions par_options;
  par_options.metrics = &par_registry;
  exec::resolve_batch(exec::ParPolicy{&pool, 0}, tree.graph,
                      {queries.data(), queries.size()}, par_options);

  // Counter sums and histogram bucket counts commute, so the merged
  // registries serialize identically.
  EXPECT_EQ(seq_registry.to_json(), par_registry.to_json());
}

TEST(BatchResolve, ParTraceHistoryDeterministicPerWorkerCount) {
  TreeFixture tree(5);
  const CompoundName miss = CompoundName::relative("miss");
  const auto queries = tree.queries(miss);
  auto traced_par_run = [&](std::size_t workers) {
    WorkerPool pool(workers);
    Tracer tracer;
    tracer.set_enabled(true);
    exec::BatchOptions options;
    options.tracer = &tracer;
    exec::resolve_batch(exec::ParPolicy{&pool, 0}, tree.graph,
                        {queries.data(), queries.size()}, options);
    return render_events(tracer) + render_spans(tracer);
  };
  EXPECT_EQ(traced_par_run(3), traced_par_run(3));
  // Per-span content is worker-count independent; span count too.
  WorkerPool pool(2);
  Tracer tracer;
  tracer.set_enabled(true);
  exec::BatchOptions options;
  options.tracer = &tracer;
  exec::resolve_batch(exec::ParPolicy{&pool, 0}, tree.graph,
                      {queries.data(), queries.size()}, options);
  EXPECT_EQ(tracer.spans().size(), queries.size());
}

TEST(BatchResolve, ParThreadsCapRespected) {
  TreeFixture tree(3);
  const CompoundName miss = CompoundName::relative("miss");
  const auto queries = tree.queries(miss);
  WorkerPool pool(4);
  exec::BatchOutcome capped = exec::resolve_batch(
      exec::ParPolicy{&pool, 2}, tree.graph,
      {queries.data(), queries.size()});
  EXPECT_EQ(capped.workers, 2u);
}

TEST(BatchResolve, FenceHoldsAcrossParBatch) {
  TreeFixture tree(3);
  const CompoundName miss = CompoundName::relative("miss");
  const auto queries = tree.queries(miss);
  Simulator sim;
  sim.schedule_in(1, [] {});
  WorkerPool pool(2);
  exec::BatchOptions options;
  options.sim = &sim;
  exec::resolve_batch(exec::ParPolicy{&pool, 0}, tree.graph,
                      {queries.data(), queries.size()}, options);
  // The fence lifted at the barrier; the queue still runs.
  EXPECT_FALSE(sim.in_pure_section());
  EXPECT_EQ(sim.run_until(10), 1u);
}

// --- the workload driver ----------------------------------------------------

TEST(LocalBatches, SeqAndParAgreeOnOutcome) {
  TreeFixture tree(5);
  std::vector<ParallelQuery> queries;
  for (const auto& name : tree.leaves) {
    queries.push_back(ParallelQuery{tree.root, name});
  }
  LocalBatchSpec spec;
  spec.batch_size = 256;
  spec.batches = 4;
  spec.seed = 7;

  spec.threads = 0;  // seq
  LocalBatchOutcome seq = run_local_batches(tree.graph, queries, spec);
  EXPECT_EQ(seq.workers, 1u);
  EXPECT_EQ(seq.resolutions, spec.batch_size * spec.batches);
  EXPECT_EQ(seq.ok, seq.resolutions);

  spec.threads = 3;  // par, same seed: same per-worker streams
  LocalBatchOutcome par = run_local_batches(tree.graph, queries, spec);
  EXPECT_EQ(par.workers, 3u);
  EXPECT_EQ(par.resolutions, seq.resolutions);
  EXPECT_EQ(par.ok, seq.ok);
  EXPECT_EQ(par.failed, seq.failed);
}

TEST(LocalBatches, MetricsAccumulateAcrossBatches) {
  TreeFixture tree(4);
  std::vector<ParallelQuery> queries;
  for (const auto& name : tree.leaves) {
    queries.push_back(ParallelQuery{tree.root, name});
  }
  LocalBatchSpec spec;
  spec.batch_size = 32;
  spec.batches = 3;
  spec.threads = 2;
  MetricsRegistry registry;
  run_local_batches(tree.graph, queries, spec, &registry);
  EXPECT_EQ(registry.counter("exec.batch.resolutions").value(),
            spec.batch_size * spec.batches);
  EXPECT_EQ(registry.counter("exec.batch.batches").value(), spec.batches);
}

}  // namespace
}  // namespace namecoh
