// Model conformance: the production resolver vs a literal transliteration
// of the paper's §2 definition
//
//   c(n1 … nk) = c(n1)                            when k == 1
//   c(n1 … nk) = σ(c(n1))(n2 … nk)                when σ(c(n1)) ∈ C
//              = ⊥E                               otherwise
//
// executed recursively, on randomized graphs (including cycles, shared
// sub-structure, and bindings to every entity kind). Also includes the
// churn workload's invariants as longer-running "soak" checks.
#include <gtest/gtest.h>

#include <optional>

#include "core/resolve.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"

namespace namecoh {
namespace {

// Literal recursive reference implementation of the paper's equation.
// Returns ⊥E (invalid id) on any failure; `fuel` bounds recursion on
// cyclic graphs the same way ResolveOptions::max_steps bounds the
// production resolver.
EntityId reference_resolve(const NamingGraph& graph, const Context& c,
                           std::span<const Name> name, std::size_t fuel) {
  if (name.empty() || fuel == 0) return EntityId::invalid();
  EntityId first = c(name.front());              // c(n1)
  if (!first.valid()) return EntityId::invalid();  // unbound: ⊥E
  if (name.size() == 1) return first;
  if (!graph.is_context_object(first)) return EntityId::invalid();
  return reference_resolve(graph, graph.context(first), name.subspan(1),
                           fuel - 1);  // σ(c(n1))(n2…nk)
}

// Random graph with arbitrary structure: all three entity kinds, random
// bindings from random contexts (cycles welcome).
struct ArbitraryGraph {
  NamingGraph graph;
  std::vector<EntityId> contexts;
  std::vector<Name> vocabulary;

  explicit ArbitraryGraph(std::uint64_t seed) {
    Rng rng(seed);
    std::size_t n_ctx = 3 + rng.next_below(8);
    std::size_t n_data = 1 + rng.next_below(5);
    std::size_t n_act = rng.next_below(3);
    std::vector<EntityId> all;
    for (std::size_t i = 0; i < n_ctx; ++i) {
      contexts.push_back(graph.add_context_object("c" + std::to_string(i)));
      all.push_back(contexts.back());
    }
    for (std::size_t i = 0; i < n_data; ++i) {
      all.push_back(graph.add_data_object("d" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n_act; ++i) {
      all.push_back(graph.add_activity("a" + std::to_string(i)));
    }
    for (int i = 0; i < 6; ++i) {
      vocabulary.emplace_back("n" + std::to_string(i));
    }
    std::size_t n_bindings = 5 + rng.next_below(25);
    for (std::size_t i = 0; i < n_bindings; ++i) {
      EntityId from = rng.pick(contexts);
      EntityId to = rng.pick(all);
      const Name& name = rng.pick(vocabulary);
      NAMECOH_CHECK(graph.bind(from, name, to).is_ok(), "bind");
    }
  }

  CompoundName random_name(Rng& rng, std::size_t max_len = 5) {
    std::size_t len = 1 + rng.next_below(max_len);
    std::vector<Name> parts;
    for (std::size_t i = 0; i < len; ++i) {
      parts.push_back(rng.pick(vocabulary));
    }
    return CompoundName(std::move(parts));
  }
};

class ModelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModelSweep, ResolverMatchesPaperEquation) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  ArbitraryGraph world(seed);
  Rng rng(seed * 977 + 5);
  const std::size_t kFuel = 64;
  for (int trial = 0; trial < 200; ++trial) {
    EntityId start = rng.pick(world.contexts);
    CompoundName name = world.random_name(rng);
    ResolveOptions options;
    options.max_steps = kFuel;
    Resolution production = resolve_from(world.graph, start, name, options);
    EntityId reference = reference_resolve(
        world.graph, world.graph.context(start), name.components(), kFuel);
    if (production.ok()) {
      EXPECT_EQ(production.entity, reference)
          << "seed=" << seed << " name=" << name.to_path();
    } else {
      EXPECT_FALSE(reference.valid())
          << "seed=" << seed << " name=" << name.to_path()
          << " production failed (" << production.status
          << ") but reference resolved";
    }
  }
}

TEST_P(ModelSweep, ResolveFromContextValueAgrees) {
  // The explicit-context entry point computes the same function.
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  ArbitraryGraph world(seed);
  Rng rng(seed * 31 + 9);
  for (int trial = 0; trial < 50; ++trial) {
    EntityId start = rng.pick(world.contexts);
    CompoundName name = world.random_name(rng);
    Resolution via_object = resolve_from(world.graph, start, name);
    Resolution via_value =
        resolve(world.graph, world.graph.context(start), name);
    EXPECT_EQ(via_object.ok(), via_value.ok());
    if (via_object.ok()) {
      EXPECT_EQ(via_object.entity, via_value.entity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelSweep, ::testing::Range(1, 26));

// --- Churn soak checks -----------------------------------------------------

TEST(ChurnSoak, RemapOnNoChurnIsPerfect) {
  Simulator sim;
  Internetwork net;
  Transport transport(sim, net);
  NetworkId n = net.add_network("n");
  std::vector<MachineId> machines;
  std::vector<EndpointId> processes;
  for (int m = 0; m < 3; ++m) {
    machines.push_back(net.add_machine(n, "m"));
    for (int p = 0; p < 3; ++p) {
      processes.push_back(net.add_endpoint(machines.back(), "p"));
    }
  }
  ChurnSpec spec;
  spec.duration = 20000;
  spec.message_interval = 10;
  spec.renumber_interval = 0;  // no churn
  ChurnOutcome outcome =
      run_churn(sim, net, transport, machines, processes, spec);
  EXPECT_GT(outcome.deliveries, 1000u);
  EXPECT_DOUBLE_EQ(outcome.pid_valid.fraction(), 1.0);
  EXPECT_EQ(outcome.send_failures, 0u);
  EXPECT_EQ(outcome.reconfigurations, 0u);
}

TEST(ChurnSoak, RemapDominatesNoRemapUnderChurn) {
  auto run = [](bool remap) {
    Simulator sim;
    Internetwork net;
    TransportConfig config;
    config.remap_embedded_pids = remap;
    Transport transport(sim, net, config);
    NetworkId n = net.add_network("n");
    std::vector<MachineId> machines;
    std::vector<EndpointId> processes;
    for (int m = 0; m < 3; ++m) {
      machines.push_back(net.add_machine(n, "m"));
      for (int p = 0; p < 3; ++p) {
        processes.push_back(net.add_endpoint(machines.back(), "p"));
      }
    }
    ChurnSpec spec;
    spec.duration = 30000;
    spec.message_interval = 15;
    spec.renumber_interval = 800;
    spec.seed = 5;
    return run_churn(sim, net, transport, machines, processes, spec);
  };
  ChurnOutcome with_remap = run(true);
  ChurnOutcome without = run(false);
  EXPECT_GT(with_remap.pid_valid.fraction(), without.pid_valid.fraction());
  EXPECT_LT(with_remap.pid_valid.fraction(), 1.0);  // staleness remains
  EXPECT_GT(with_remap.reconfigurations, 10u);
}

TEST(ChurnSoak, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    Internetwork net;
    Transport transport(sim, net);
    NetworkId n = net.add_network("n");
    std::vector<MachineId> machines{net.add_machine(n, "m0"),
                                    net.add_machine(n, "m1")};
    std::vector<EndpointId> processes;
    for (MachineId m : machines) {
      for (int p = 0; p < 2; ++p) {
        processes.push_back(net.add_endpoint(m, "p"));
      }
    }
    ChurnSpec spec;
    spec.duration = 10000;
    spec.renumber_interval = 300;
    spec.seed = 77;
    return run_churn(sim, net, transport, machines, processes, spec);
  };
  ChurnOutcome a = run();
  ChurnOutcome b = run();
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.pid_valid.successes(), b.pid_valid.successes());
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
}

}  // namespace
}  // namespace namecoh
