// Tests for the repair advisor: it must rediscover the paper's own mapping
// rules on the paper's own topologies.
#include <gtest/gtest.h>

#include "coherence/repair.hpp"
#include "schemes/crosslink.hpp"
#include "schemes/newcastle.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

TEST(Repair, DiscoversNewcastleMappingRule) {
  // On a Newcastle system the advisor should find "/" → "/../m1" as the
  // rule repairing m1-names for a process on m2.
  NamingGraph graph;
  FileSystem fs(graph);
  NewcastleScheme scheme(fs);
  SiteId m1 = scheme.add_site("m1");
  SiteId m2 = scheme.add_site("m2");
  TreeSpec spec;
  spec.site_tag = "s1";
  populate_tree(fs, scheme.site_tree(m1), spec, 3);
  spec.site_tag = "s2";
  populate_tree(fs, scheme.site_tree(m2), spec, 3);
  scheme.finalize();

  RepairAdvisor advisor(graph);
  EntityId ctx1 = scheme.make_site_context(m1);
  EntityId ctx2 = scheme.make_site_context(m2);
  auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(m1)));
  RepairReport report = advisor.suggest(ctx1, ctx2, probes);

  EXPECT_EQ(report.probes, probes.size());
  EXPECT_EQ(report.incoherent, probes.size());  // Newcastle: nothing shared
  ASSERT_FALSE(report.suggestions.empty());
  const MappingSuggestion& best = report.suggestions.front();
  EXPECT_EQ(best.from_prefix, CompoundName::path("/"));
  EXPECT_EQ(best.to_prefix.to_path(), "/../m1");
  // The rule repairs every incoherent probe.
  EXPECT_EQ(best.repaired, report.incoherent);
  EXPECT_EQ(report.repairable, report.incoherent);
}

TEST(Repair, DiscoversCrossLinkPrefix) {
  // On a federation with a cross-link, the advisor should find
  // "/" → "/org1" (org1's names as seen from org2 via the link).
  NamingGraph graph;
  FileSystem fs(graph);
  CrossLinkScheme scheme(fs);
  SiteId org1 = scheme.add_site("org1");
  SiteId org2 = scheme.add_site("org2");
  ASSERT_TRUE(
      fs.create_file_at(scheme.site_tree(org1), "users/ann/f", "a").is_ok());
  ASSERT_TRUE(
      fs.create_file_at(scheme.site_tree(org1), "projects/p/x", "p").is_ok());
  scheme.finalize();
  ASSERT_TRUE(scheme.add_cross_link(org2, Name("org1"), org1).is_ok());

  RepairAdvisor advisor(graph);
  EntityId c1 = scheme.make_site_context(org1);
  EntityId c2 = scheme.make_site_context(org2);
  auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(org1)));
  RepairOptions options;
  options.allow_dot_names = false;  // federations have no super-root
  RepairReport report = advisor.suggest(c1, c2, probes, options);

  ASSERT_FALSE(report.suggestions.empty());
  const MappingSuggestion& best = report.suggestions.front();
  EXPECT_EQ(best.from_prefix, CompoundName::path("/"));
  EXPECT_EQ(best.to_prefix.to_path(), "/org1");
  EXPECT_EQ(best.repaired, report.incoherent);
}

TEST(Repair, NoLinkMeansNoSuggestions) {
  // Without any path from B to A's entities, nothing is repairable.
  NamingGraph graph;
  FileSystem fs(graph);
  CrossLinkScheme scheme(fs);
  SiteId org1 = scheme.add_site("org1");
  SiteId org2 = scheme.add_site("org2");
  ASSERT_TRUE(fs.create_file_at(scheme.site_tree(org1), "f", "x").is_ok());
  scheme.finalize();
  RepairAdvisor advisor(graph);
  auto probes = absolutize(probes_from_dir(graph, scheme.site_tree(org1)));
  RepairReport report = advisor.suggest(scheme.make_site_context(org1),
                                        scheme.make_site_context(org2),
                                        probes);
  EXPECT_GT(report.incoherent, 0u);
  EXPECT_EQ(report.repairable, 0u);
  EXPECT_TRUE(report.suggestions.empty());
}

TEST(Repair, CoherentProbesNeedNoRepair) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId shared = fs.make_root("shared");
  ASSERT_TRUE(fs.create_file_at(shared, "a/b", "x").is_ok());
  EntityId ctx1 = graph.add_context_object("c1");
  graph.context(ctx1) = FileSystem::make_process_context(shared, shared);
  EntityId ctx2 = graph.add_context_object("c2");
  graph.context(ctx2) = FileSystem::make_process_context(shared, shared);
  RepairAdvisor advisor(graph);
  auto probes = absolutize(probes_from_dir(graph, shared));
  RepairReport report = advisor.suggest(ctx1, ctx2, probes);
  EXPECT_EQ(report.incoherent, 0u);
  EXPECT_TRUE(report.suggestions.empty());
}

TEST(Repair, ConflictsCounted) {
  // Same name bound to different entities on both sides → kDifferent.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId r1 = fs.make_root("r1");
  EntityId r2 = fs.make_root("r2");
  ASSERT_TRUE(fs.create_file_at(r1, "etc/passwd", "1").is_ok());
  ASSERT_TRUE(fs.create_file_at(r2, "etc/passwd", "2").is_ok());
  EntityId c1 = graph.add_context_object("c1");
  graph.context(c1) = FileSystem::make_process_context(r1, r1);
  EntityId c2 = graph.add_context_object("c2");
  graph.context(c2) = FileSystem::make_process_context(r2, r2);
  RepairAdvisor advisor(graph);
  std::vector<CompoundName> probes = {CompoundName::path("/etc/passwd")};
  RepairReport report = advisor.suggest(c1, c2, probes);
  EXPECT_EQ(report.incoherent, 1u);
  EXPECT_EQ(report.conflicts, 1u);
}

TEST(Repair, WeakModeAcceptsReplicaRepairs) {
  // A repair that lands on a replica counts under kWeak, not kStrict.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId r1 = fs.make_root("r1");
  EntityId r2 = fs.make_root("r2");
  auto orig = fs.create_file_at(r1, "bin/cc", "cc");
  ASSERT_TRUE(orig.is_ok());
  auto bin2 = fs.mkdir_p(r2, "tools");
  ASSERT_TRUE(bin2.is_ok());
  auto replica = fs.replicate_file(orig.value(), bin2.value(), Name("cc"));
  ASSERT_TRUE(replica.is_ok());
  EntityId c1 = graph.add_context_object("c1");
  graph.context(c1) = FileSystem::make_process_context(r1, r1);
  EntityId c2 = graph.add_context_object("c2");
  graph.context(c2) = FileSystem::make_process_context(r2, r2);
  RepairAdvisor advisor(graph);
  std::vector<CompoundName> probes = {CompoundName::path("/bin/cc")};

  RepairOptions weak;
  weak.mode = CoherenceMode::kWeak;
  RepairReport report = advisor.suggest(c1, c2, probes, weak);
  ASSERT_FALSE(report.suggestions.empty());
  // "/bin/cc" on side A maps to "/tools/cc" on side B — a replica, which
  // weak mode accepts.
  EXPECT_EQ(report.suggestions.front().repaired, 1u);

  RepairOptions strict;
  strict.mode = CoherenceMode::kStrict;
  RepairReport strict_report = advisor.suggest(c1, c2, probes, strict);
  EXPECT_EQ(strict_report.repairable, 0u);
}

TEST(Repair, ApplyRebasesNames) {
  MappingSuggestion rule(CompoundName::path("/users"),
                         CompoundName::path("/org2/users"));
  auto mapped =
      RepairAdvisor::apply(rule, CompoundName::path("/users/ann/notes"));
  ASSERT_TRUE(mapped.is_ok());
  EXPECT_EQ(mapped.value().to_path(), "/org2/users/ann/notes");
  EXPECT_FALSE(
      RepairAdvisor::apply(rule, CompoundName::path("/other")).is_ok());
}

TEST(Repair, SuggestionLimitHonored) {
  // Many disjoint one-off mappings: cap kicks in.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId r1 = fs.make_root("r1");
  EntityId r2 = fs.make_root("r2");
  std::vector<CompoundName> probes;
  for (int i = 0; i < 8; ++i) {
    std::string leaf = "f" + std::to_string(i);
    auto f = fs.create_file_at(r1, "d" + std::to_string(i) + "/" + leaf,
                               "x");
    ASSERT_TRUE(f.is_ok());
    // Give r2 a differently named route to the same entity.
    auto alt = fs.mkdir_p(r2, "alt" + std::to_string(i));
    ASSERT_TRUE(alt.is_ok());
    ASSERT_TRUE(fs.link(alt.value(), Name(leaf), f.value()).is_ok());
    probes.push_back(
        CompoundName::path("/d" + std::to_string(i) + "/" + leaf));
  }
  EntityId c1 = graph.add_context_object("c1");
  graph.context(c1) = FileSystem::make_process_context(r1, r1);
  EntityId c2 = graph.add_context_object("c2");
  graph.context(c2) = FileSystem::make_process_context(r2, r2);
  RepairAdvisor advisor(graph);
  RepairOptions options;
  options.max_suggestions = 3;
  RepairReport report = advisor.suggest(c1, c2, probes, options);
  EXPECT_LE(report.suggestions.size(), 3u);
  EXPECT_EQ(report.repairable, 8u);
}

}  // namespace
}  // namespace namecoh
