// Capstone integration test: a distributed build farm, every layer at once.
//
// Topology: an Andrew-style shared naming graph with two client machines.
// The project lives in the shared tree; the compiler is a multi-file
// program replicated on both machines; a build coordinator on m1 locates a
// builder service via the registry, execs the compiler *by name* on m2,
// passes the project path as a message, and the remote child resolves it —
// coherently, because the path is a /vice name. Everything flows through
// the real messaging layer on the simulator.
#include <gtest/gtest.h>

#include "coherence/coherence.hpp"
#include "fs/snapshot.hpp"
#include "ns/name_service.hpp"
#include "os/program.hpp"
#include "os/service_registry.hpp"
#include "schemes/shared_graph.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

class BuildFarm : public ::testing::Test {
 protected:
  BuildFarm()
      : fs_(graph_), transport_(sim_, net_),
        pm_(graph_, fs_, net_, transport_), scheme_(fs_),
        service_(graph_, net_, transport_, homes_) {
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    c1_ = scheme_.add_site("c1");
    c2_ = scheme_.add_site("c2");
  }

  void SetUp() override {
    // Machine-local skeletons.
    populate_unix_skeleton(fs_, scheme_.site_tree(c1_), "m1");
    populate_unix_skeleton(fs_, scheme_.site_tree(c2_), "m2");
    // The project lives in the SHARED tree: /vice/projects/app.
    ASSERT_TRUE(fs_.create_file_at(scheme_.shared_tree(),
                                   "projects/app/main.c",
                                   "int main(){}").is_ok());
    // The compiler is a multi-file program installed on BOTH machines at
    // the same local path, as the paper's replicated commands.
    for (SiteId site : {c1_, c2_}) {
      EntityId tree = scheme_.site_tree(site);
      auto cc_dir = fs_.mkdir_p(tree, "opt/cc");
      ASSERT_TRUE(cc_dir.is_ok());
      ASSERT_TRUE(
          fs_.create_file_at(cc_dir.value(), "lib/backend.o", "[backend]")
              .is_ok());
      auto image = make_program(fs_, cc_dir.value(), Name("cc"),
                                "[cc-driver]", {"lib/backend.o"});
      ASSERT_TRUE(image.is_ok());
    }
    scheme_.finalize();
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  ProcessManager pm_;
  SharedGraphScheme scheme_;
  AuthorityMap homes_;
  NameService service_;
  MachineId m1_, m2_;
  SiteId c1_, c2_;
};

TEST_F(BuildFarm, EndToEndDistributedBuild) {
  // --- Boot ----------------------------------------------------------------
  EntityId root1 = scheme_.site_root(c1_);
  EntityId root2 = scheme_.site_root(c2_);
  ProcessId coordinator = pm_.spawn(m1_, "coordinator", root1, root1);
  ProcessId builder_daemon = pm_.spawn(m2_, "builder", root2, root2);

  // Registry on m1; the builder announces itself.
  ServiceRegistry registry(net_, transport_, m1_);
  RegistryClient rc(net_, transport_, sim_, registry);
  ASSERT_TRUE(rc.announce(pm_.info(builder_daemon).endpoint, "builder",
                          pm_.info(builder_daemon).endpoint).is_ok());
  pm_.settle();

  // --- Locate the builder ----------------------------------------------------
  auto builder_pid =
      rc.locate(pm_.info(coordinator).endpoint, "builder");
  ASSERT_TRUE(builder_pid.is_ok());
  EXPECT_EQ(transport_.resolve_pid(pm_.info(coordinator).endpoint,
                                   builder_pid.value()).value(),
            pm_.info(builder_daemon).endpoint);

  // --- Exec the compiler on m2, by name -------------------------------------
  // The coordinator names the compiler by ITS local path /opt/cc/cc; on m2
  // the replicated image at the same path loads (weak coherence in
  // action), and R(file) finds the backend segment.
  auto worker = exec_program(pm_, builder_daemon, m2_, "/opt/cc/cc");
  ASSERT_TRUE(worker.is_ok());
  EXPECT_EQ(pm_.info(worker.value()).machine, m2_);

  // --- Pass the project path as a message -----------------------------------
  const std::string project = "/vice/projects/app/main.c";
  ASSERT_TRUE(
      pm_.send_name_to(coordinator, worker.value(), project).is_ok());
  pm_.settle();
  ASSERT_FALSE(pm_.received_names().empty());
  const ReceivedName& param = pm_.received_names().back();

  // The worker resolves the parameter in its own context (R(receiver)) —
  // and because it is a /vice name, that is already coherent with what the
  // coordinator meant (§5.2: only shared names can be passed).
  Resolution meant = pm_.resolve_internal(coordinator, param.path);
  Resolution got = pm_.resolve_received(param, ByReceiverRule{});
  ASSERT_TRUE(meant.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(meant.same_entity(got));
  EXPECT_EQ(graph_.data(got.entity), "int main(){}");

  // A machine-local parameter would NOT have been coherent — the §5.2
  // restriction, verified negatively.
  ASSERT_TRUE(
      pm_.send_name_to(coordinator, worker.value(), "/etc/passwd").is_ok());
  pm_.settle();
  const ReceivedName& local_param = pm_.received_names().back();
  Resolution meant_local =
      pm_.resolve_internal(coordinator, local_param.path);
  Resolution got_local = pm_.resolve_received(local_param, ByReceiverRule{});
  EXPECT_FALSE(meant_local.same_entity(got_local));
  // …but R(sender) repairs even that one.
  Resolution repaired = pm_.resolve_received(local_param, BySenderRule{});
  EXPECT_TRUE(meant_local.same_entity(repaired));
}

TEST_F(BuildFarm, RemoteResolutionAgreesWithSharedTreeSemantics) {
  // Stand up name servers with authority split: each machine owns its own
  // tree, m1 additionally owns the shared tree.
  homes_.set_home_subtree(graph_, scheme_.shared_tree(), m1_);
  homes_.set_home_subtree(graph_, scheme_.site_tree(c1_), m1_);
  homes_.set_home_subtree(graph_, scheme_.site_tree(c2_), m2_);
  service_.add_server(m1_);
  service_.add_server(m2_);

  // A client on m2 resolves the shared project — referral to m1.
  ResolverClient client(graph_, net_, transport_, sim_, service_, m2_,
                        "resolver");
  auto remote = client.resolve(scheme_.site_tree(c2_),
                               CompoundName::relative(
                                   "vice/projects/app/main.c"));
  ASSERT_TRUE(remote.is_ok());
  // It must equal the in-memory resolution — same function, different cost.
  Resolution local = resolve_from(
      graph_, scheme_.site_tree(c2_),
      CompoundName::relative("vice/projects/app/main.c"));
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(remote.value(), local.entity);
  EXPECT_GE(client.snapshot()["referrals_followed"], 1u);

  // And the entity is the same one m1's clients see: spatial coherence of
  // the shared graph, verified through the distributed path.
  ResolverClient client1(graph_, net_, transport_, sim_, service_, m1_,
                         "resolver1");
  auto from_m1 = client1.resolve(scheme_.site_tree(c1_),
                                 CompoundName::relative(
                                     "vice/projects/app/main.c"));
  ASSERT_TRUE(from_m1.is_ok());
  EXPECT_EQ(from_m1.value(), remote.value());
}

TEST_F(BuildFarm, ExecutableSnapshotTravelsToNewMachine) {
  // Ship the compiler to a third, brand-new machine as a snapshot (it is
  // NOT in the shared tree) and run it there: Fig. 6 + §5.3 for programs.
  EntityId tree3 = fs_.make_root("c3");  // a machine outside the federation

  Context ctx1 = FileSystem::make_process_context(scheme_.site_tree(c1_),
                                                  scheme_.site_tree(c1_));
  EntityId cc_dir = fs_.resolve_path(ctx1, "/opt/cc").entity;
  // Cut the shared tree at the boundary (not inside /opt/cc, but safe).
  auto snapshot = export_subtree(graph_, cc_dir, {scheme_.shared_tree()});
  ASSERT_TRUE(snapshot.is_ok());
  auto opt3 = fs_.mkdir_p(tree3, "opt");
  ASSERT_TRUE(opt3.is_ok());
  auto imported =
      import_snapshot(fs_, opt3.value(), Name("cc"), snapshot.value());
  ASSERT_TRUE(imported.is_ok());

  Context ctx3 = FileSystem::make_process_context(tree3, tree3);
  Resolution image = fs_.resolve_path(ctx3, "/opt/cc/cc");
  ASSERT_TRUE(image.ok());
  ProgramLoader loader(graph_);
  LoadedProgram program = loader.load(image.entity, image.trail.back());
  EXPECT_TRUE(program.complete());
  EXPECT_EQ(program.text, "[cc-driver][backend]");
}

}  // namespace
}  // namespace namecoh
