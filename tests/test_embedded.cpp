// Tests for embedded names (§6 Example 2, Fig. 6): Algol-scope search,
// document assembly, and the relocation-invariance property.
#include <gtest/gtest.h>

#include "embed/embedded.hpp"
#include "fs/file_system.hpp"
#include "workload/doc_gen.hpp"

namespace namecoh {
namespace {

class EmbeddedTest : public ::testing::Test {
 protected:
  EmbeddedTest() : fs_(graph_), resolver_(graph_), assembler_(graph_) {
    root_ = fs_.make_root("root");
  }

  NamingGraph graph_;
  FileSystem fs_;
  EmbeddedNameResolver resolver_;
  DocumentAssembler assembler_;
  EntityId root_;
};

TEST_F(EmbeddedTest, FindScopeInContainingDir) {
  // Binding in the containing directory itself: distance 0.
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  ASSERT_TRUE(fs_.create_file(dir.value(), Name("target")).is_ok());
  auto scope = resolver_.find_scope(dir.value(),
                                    CompoundName::relative("target"));
  ASSERT_TRUE(scope.is_ok());
  EXPECT_EQ(scope.value(), dir.value());
}

TEST_F(EmbeddedTest, FindScopeClimbsAncestors) {
  // Fig. 6: the binding sits at an ancestor n'; the search climbs to it.
  ASSERT_TRUE(fs_.mkdir_p(root_, "a/b/c").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "a/style", "").is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId c = fs_.resolve_path(ctx, "/a/b/c").entity;
  EntityId a = fs_.resolve_path(ctx, "/a").entity;
  auto scope = resolver_.find_scope(c, CompoundName::relative("style"));
  ASSERT_TRUE(scope.is_ok());
  EXPECT_EQ(scope.value(), a);
}

TEST_F(EmbeddedTest, FindScopeShadowing) {
  // A nearer binding shadows an outer one — Algol's nested-block rule.
  ASSERT_TRUE(fs_.create_file_at(root_, "lib/x", "outer").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "a/lib/x", "inner").is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId a = fs_.resolve_path(ctx, "/a").entity;
  Resolution res = resolver_.resolve_algol(a, CompoundName::relative("lib/x"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "inner");
}

TEST_F(EmbeddedTest, FindScopeFailsWhenNowhere) {
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  auto scope = resolver_.find_scope(dir.value(),
                                    CompoundName::relative("ghost"));
  EXPECT_EQ(scope.code(), StatusCode::kNotFound);
  // Non-directory start.
  auto file = fs_.create_file(root_, Name("f"));
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(resolver_.find_scope(file.value(),
                                 CompoundName::relative("x"))
                .code(),
            StatusCode::kNotAContext);
}

TEST_F(EmbeddedTest, ResolveAlgolFullName) {
  // The scope binds the first component; the *whole* name resolves from
  // the scope dir (Fig. 6's "resolving a/p relative to node n'").
  ASSERT_TRUE(fs_.create_file_at(root_, "assets/img/logo", "L").is_ok());
  ASSERT_TRUE(fs_.mkdir_p(root_, "ch1/deep").is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId deep = fs_.resolve_path(ctx, "/ch1/deep").entity;
  Resolution res = resolver_.resolve_algol(
      deep, CompoundName::relative("assets/img/logo"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "L");
}

TEST_F(EmbeddedTest, AssembleAlgolResolvesAllRefs) {
  Document doc = make_document(fs_, root_, Name("book"), DocSpec{});
  AssembleOptions options;
  options.rule = EmbedRule::kAlgolScope;
  DocumentMeaning meaning =
      assembler_.assemble(doc.root_file, doc.subtree, options);
  EXPECT_TRUE(meaning.fully_resolved());
  EXPECT_EQ(meaning.refs.size(), doc.refs);
  // parts counts textual inclusions: every file at least once, shared
  // assets once per reference.
  EXPECT_GE(meaning.parts.size(), doc.files);
  std::unordered_set<EntityId> distinct(meaning.parts.begin(),
                                        meaning.parts.end());
  EXPECT_EQ(distinct.size(), doc.files);
  EXPECT_FALSE(meaning.text.empty());
}

TEST_F(EmbeddedTest, MeaningInvariantUnderRelocation) {
  // Fig. 6's headline property: relocate the subtree, meaning unchanged —
  // under R(file). Under R(a) with an absolute-style reader, it breaks.
  Document doc = make_document(fs_, root_, Name("book"), DocSpec{});
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning before =
      assembler_.assemble(doc.root_file, doc.subtree, algol);
  ASSERT_TRUE(before.fully_resolved());

  // Relocate: move the whole document under a different directory.
  auto elsewhere = fs_.mkdir(root_, Name("elsewhere"));
  ASSERT_TRUE(elsewhere.is_ok());
  ASSERT_TRUE(fs_.move_entry(root_, Name("book"), elsewhere.value(),
                             Name("book")).is_ok());
  DocumentMeaning after =
      assembler_.assemble(doc.root_file, doc.subtree, algol);
  EXPECT_TRUE(after.same_meaning(before));
}

TEST_F(EmbeddedTest, MeaningInvariantUnderMultiAttach) {
  // "The subtree … can be simultaneously attached in different parts of
  // the distributed environment."
  Document doc = make_document(fs_, root_, Name("book"), DocSpec{});
  EntityId other_root = fs_.make_root("other-machine");
  ASSERT_TRUE(fs_.attach(other_root, Name("imported-book"), doc.subtree)
                  .is_ok());
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning here = assembler_.assemble(doc.root_file, doc.subtree, algol);
  // Reached via the other attachment, the meaning is the same.
  Context other_ctx = FileSystem::make_process_context(other_root, other_root);
  Resolution via_other = fs_.resolve_path(other_ctx, "/imported-book/book.tex");
  ASSERT_TRUE(via_other.ok());
  EntityId containing = via_other.trail.back();
  DocumentMeaning there =
      assembler_.assemble(via_other.entity, containing, algol);
  EXPECT_TRUE(here.same_meaning(there));
}

TEST_F(EmbeddedTest, CopyPreservesMeaningStructurally) {
  // A copied subtree's documents resolve within the *copy* — same shape,
  // different (copied) entities, still fully resolved.
  Document doc = make_document(fs_, root_, Name("book"), DocSpec{});
  auto copy = fs_.copy_subtree(doc.subtree, root_, Name("book2"));
  ASSERT_TRUE(copy.is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  Resolution copied_root = fs_.resolve_path(ctx, "/book2/book.tex");
  ASSERT_TRUE(copied_root.ok());
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning copied_meaning =
      assembler_.assemble(copied_root.entity, copy.value(), algol);
  DocumentMeaning original_meaning =
      assembler_.assemble(doc.root_file, doc.subtree, algol);
  EXPECT_TRUE(copied_meaning.fully_resolved());
  EXPECT_EQ(copied_meaning.refs.size(), original_meaning.refs.size());
  // The copy's refs point into the copy, not the original.
  EXPECT_NE(copied_meaning.denotation(), original_meaning.denotation());
}

TEST_F(EmbeddedTest, ActivityRuleBreaksUnderRelocation) {
  // The contrast case: with R(a), a reader whose cwd was the original
  // location loses the document when it moves.
  Document doc = make_document(fs_, root_, Name("book"), DocSpec{});
  Context reader = FileSystem::make_process_context(root_, doc.subtree);
  AssembleOptions by_activity;
  by_activity.rule = EmbedRule::kActivityContext;
  by_activity.reader_context = &reader;
  DocumentMeaning before =
      assembler_.assemble(doc.root_file, doc.subtree, by_activity);
  EXPECT_TRUE(before.fully_resolved());

  auto elsewhere = fs_.mkdir(root_, Name("elsewhere"));
  ASSERT_TRUE(elsewhere.is_ok());
  ASSERT_TRUE(fs_.move_entry(root_, Name("book"), elsewhere.value(),
                             Name("book")).is_ok());
  // The reader's context is unchanged (it still points at the old cwd —
  // which is now reached differently); simulate a *fresh* reader at the
  // old location's path, which is how real systems break: the path the
  // names were written against no longer holds the files.
  Context stale_reader = FileSystem::make_process_context(root_, root_);
  AssembleOptions stale;
  stale.rule = EmbedRule::kActivityContext;
  stale.reader_context = &stale_reader;
  DocumentMeaning after =
      assembler_.assemble(doc.root_file, doc.subtree, stale);
  EXPECT_FALSE(after.fully_resolved());
  EXPECT_FALSE(after.same_meaning(before));
}

TEST_F(EmbeddedTest, ActivityRuleDependsOnReader) {
  // Two readers with different cwds get different meanings for the same
  // structured object — §4 case 3 incoherence.
  ASSERT_TRUE(fs_.create_file_at(root_, "d1/inc", "one").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "d2/inc", "two").is_ok());
  auto doc = fs_.create_file(root_, Name("main"), "body:");
  ASSERT_TRUE(doc.is_ok());
  graph_.add_embedded_name(doc.value(), CompoundName::relative("inc"));
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId d1 = fs_.resolve_path(ctx, "/d1").entity;
  EntityId d2 = fs_.resolve_path(ctx, "/d2").entity;

  Context reader1 = FileSystem::make_process_context(root_, d1);
  Context reader2 = FileSystem::make_process_context(root_, d2);
  AssembleOptions o1, o2;
  o1.rule = o2.rule = EmbedRule::kActivityContext;
  o1.reader_context = &reader1;
  o2.reader_context = &reader2;
  DocumentMeaning m1 = assembler_.assemble(doc.value(), root_, o1);
  DocumentMeaning m2 = assembler_.assemble(doc.value(), root_, o2);
  ASSERT_TRUE(m1.fully_resolved());
  ASSERT_TRUE(m2.fully_resolved());
  EXPECT_FALSE(m1.same_meaning(m2));
  EXPECT_EQ(m1.text, "body:one");
  EXPECT_EQ(m2.text, "body:two");
}

TEST_F(EmbeddedTest, AssembleCutsIncludeCycles) {
  auto a = fs_.create_file(root_, Name("a"), "A");
  auto b = fs_.create_file(root_, Name("b"), "B");
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  graph_.add_embedded_name(a.value(), CompoundName::relative("b"));
  graph_.add_embedded_name(b.value(), CompoundName::relative("a"));
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning meaning = assembler_.assemble(a.value(), root_, algol);
  EXPECT_EQ(meaning.text, "AB");  // the back-include of a is cut
  EXPECT_EQ(meaning.parts.size(), 2u);
}

TEST_F(EmbeddedTest, AssembleRespectsDepthLimit) {
  // A chain of includes deeper than max_depth is truncated, not fatal.
  EntityId prev = EntityId::invalid();
  for (int i = 0; i < 10; ++i) {
    auto f = fs_.create_file(root_, Name("f" + std::to_string(i)),
                             std::to_string(i));
    ASSERT_TRUE(f.is_ok());
    if (prev.valid()) {
      graph_.add_embedded_name(prev,
                               CompoundName::relative("f" + std::to_string(i)));
    }
    prev = f.value();
  }
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId f0 = fs_.resolve_path(ctx, "/f0").entity;
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  algol.max_depth = 3;
  DocumentMeaning meaning = assembler_.assemble(f0, root_, algol);
  EXPECT_EQ(meaning.parts.size(), 4u);  // f0..f3
}

TEST_F(EmbeddedTest, UnresolvedRefsAreCountedNotFatal) {
  auto doc = fs_.create_file(root_, Name("doc"), "text");
  ASSERT_TRUE(doc.is_ok());
  graph_.add_embedded_name(doc.value(), CompoundName::relative("missing"));
  graph_.add_embedded_name(doc.value(), CompoundName::relative("also/gone"));
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning meaning = assembler_.assemble(doc.value(), root_, algol);
  EXPECT_EQ(meaning.unresolved, 2u);
  EXPECT_FALSE(meaning.fully_resolved());
  EXPECT_EQ(meaning.refs.size(), 2u);
  EXPECT_FALSE(meaning.refs[0].status.is_ok());
  // Denotation marks unresolved refs with the invalid id.
  EXPECT_FALSE(meaning.denotation()[0].valid());
}

TEST_F(EmbeddedTest, ActivityRuleRequiresReaderContext) {
  auto doc = fs_.create_file(root_, Name("doc"), "x");
  ASSERT_TRUE(doc.is_ok());
  AssembleOptions bad;
  bad.rule = EmbedRule::kActivityContext;
  EXPECT_THROW(assembler_.assemble(doc.value(), root_, bad),
               PreconditionError);
}

TEST_F(EmbeddedTest, CombiningSubtreesNoConflicts) {
  // "several structured objects … can be combined to form a larger
  // structured object … without name conflicts": two documents with
  // *identical internal names* coexist under one parent.
  Document d1 = make_document(fs_, root_, Name("bookA"), DocSpec{});
  Document d2 = make_document(fs_, root_, Name("bookB"), DocSpec{});
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning m1 = assembler_.assemble(d1.root_file, d1.subtree, algol);
  DocumentMeaning m2 = assembler_.assemble(d2.root_file, d2.subtree, algol);
  ASSERT_TRUE(m1.fully_resolved());
  ASSERT_TRUE(m2.fully_resolved());
  // Each document's refs stay inside its own subtree: no entity is shared.
  const std::vector<EntityId> d1_entities = m1.denotation();
  std::unordered_set<EntityId> set1(d1_entities.begin(), d1_entities.end());
  for (EntityId e : m2.denotation()) {
    EXPECT_FALSE(set1.contains(e));
  }
}

TEST(EmbedRuleNames, Stable) {
  EXPECT_EQ(embed_rule_name(EmbedRule::kActivityContext), "R(activity)");
  EXPECT_EQ(embed_rule_name(EmbedRule::kAlgolScope), "R(file)");
}

}  // namespace
}  // namespace namecoh
