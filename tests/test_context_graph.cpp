// Tests for Context and NamingGraph (§2: contexts, entities, state σ).
#include <gtest/gtest.h>

#include "core/naming_graph.hpp"

namespace namecoh {
namespace {

TEST(Context, BindLookupUnbind) {
  Context ctx;
  EXPECT_TRUE(ctx.empty());
  ctx.bind(Name("a"), EntityId(1));
  EXPECT_EQ(ctx.size(), 1u);
  EXPECT_TRUE(ctx.contains(Name("a")));
  EXPECT_EQ(ctx(Name("a")), EntityId(1));
  ASSERT_TRUE(ctx.lookup(Name("a")).has_value());
  EXPECT_EQ(*ctx.lookup(Name("a")), EntityId(1));
  EXPECT_TRUE(ctx.unbind(Name("a")));
  EXPECT_FALSE(ctx.unbind(Name("a")));
  EXPECT_FALSE(ctx.contains(Name("a")));
}

TEST(Context, UnboundNameIsUndefinedEntity) {
  Context ctx;
  EXPECT_FALSE(ctx(Name("ghost")).valid());  // the paper's ⊥E
  EXPECT_FALSE(ctx.lookup(Name("ghost")).has_value());
}

TEST(Context, RebindReplaces) {
  Context ctx;
  ctx.bind(Name("a"), EntityId(1));
  ctx.bind(Name("a"), EntityId(2));
  EXPECT_EQ(ctx.size(), 1u);
  EXPECT_EQ(ctx(Name("a")), EntityId(2));
}

TEST(Context, BindingInvalidEntityThrows) {
  Context ctx;
  EXPECT_THROW(ctx.bind(Name("a"), EntityId::invalid()), PreconditionError);
}

TEST(Context, OverlayCopiesAndOverwrites) {
  Context a, b;
  a.bind(Name("x"), EntityId(1));
  a.bind(Name("y"), EntityId(2));
  b.bind(Name("y"), EntityId(9));
  b.bind(Name("z"), EntityId(3));
  a.overlay(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a(Name("x")), EntityId(1));
  EXPECT_EQ(a(Name("y")), EntityId(9));
  EXPECT_EQ(a(Name("z")), EntityId(3));
}

TEST(Context, AgreesOn) {
  Context a, b;
  a.bind(Name("x"), EntityId(1));
  b.bind(Name("x"), EntityId(1));
  EXPECT_TRUE(a.agrees_on(b, Name("x")));
  EXPECT_TRUE(a.agrees_on(b, Name("unbound-in-both")));  // ⊥E == ⊥E
  b.bind(Name("x"), EntityId(2));
  EXPECT_FALSE(a.agrees_on(b, Name("x")));
  b.unbind(Name("x"));
  EXPECT_FALSE(a.agrees_on(b, Name("x")));  // bound vs ⊥E
}

TEST(Context, EqualityAndPrinting) {
  Context a, b;
  a.bind(Name("n"), EntityId(5));
  EXPECT_NE(a, b);
  b.bind(Name("n"), EntityId(5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "{n -> #5}");
}

TEST(NamingGraph, EntityCreationAndKinds) {
  NamingGraph g;
  EntityId act = g.add_activity("proc");
  EntityId dir = g.add_context_object("dir");
  EntityId file = g.add_data_object("file", "hello");
  EXPECT_EQ(g.entity_count(), 3u);
  EXPECT_TRUE(g.is_activity(act));
  EXPECT_TRUE(g.is_context_object(dir));
  EXPECT_TRUE(g.is_data_object(file));
  EXPECT_EQ(g.kind_of(act), EntityKind::kActivity);
  EXPECT_EQ(g.label(file), "file");
  EXPECT_EQ(g.data(file), "hello");
}

TEST(NamingGraph, ContainsAndInvalidIds) {
  NamingGraph g;
  EntityId id = g.add_activity("a");
  EXPECT_TRUE(g.contains(id));
  EXPECT_FALSE(g.contains(EntityId::invalid()));
  EXPECT_FALSE(g.contains(EntityId(99)));
  EXPECT_FALSE(g.is_activity(EntityId(99)));
  EXPECT_THROW((void)g.kind_of(EntityId(99)), PreconditionError);
}

TEST(NamingGraph, BindValidation) {
  NamingGraph g;
  EntityId dir = g.add_context_object("d");
  EntityId file = g.add_data_object("f");
  EXPECT_TRUE(g.bind(dir, Name("f"), file).is_ok());
  // Binding in a non-context fails with NOT_A_CONTEXT.
  EXPECT_EQ(g.bind(file, Name("x"), dir).code(), StatusCode::kNotAContext);
  // Unknown ids.
  EXPECT_EQ(g.bind(EntityId(99), Name("x"), dir).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(g.bind(dir, Name("x"), EntityId(99)).code(),
            StatusCode::kInvalidArgument);
}

TEST(NamingGraph, LookupAndUnbind) {
  NamingGraph g;
  EntityId dir = g.add_context_object("d");
  EntityId file = g.add_data_object("f");
  ASSERT_TRUE(g.bind(dir, Name("f"), file).is_ok());
  auto found = g.lookup(dir, Name("f"));
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(found.value(), file);
  EXPECT_EQ(g.lookup(dir, Name("nope")).code(), StatusCode::kNotFound);
  EXPECT_TRUE(g.unbind(dir, Name("f")).is_ok());
  EXPECT_EQ(g.unbind(dir, Name("f")).code(), StatusCode::kNotFound);
}

TEST(NamingGraph, DataObjectState) {
  NamingGraph g;
  EntityId file = g.add_data_object("f", "v1");
  g.set_data(file, "v2");
  EXPECT_EQ(g.data(file), "v2");
  EntityId dir = g.add_context_object("d");
  EXPECT_THROW((void)g.data(dir), PreconditionError);
  EXPECT_THROW((void)g.context(file), PreconditionError);
}

TEST(NamingGraph, EmbeddedNames) {
  NamingGraph g;
  EntityId file = g.add_data_object("doc");
  EXPECT_TRUE(g.embedded_names(file).empty());
  g.add_embedded_name(file, CompoundName::relative("a/b"));
  g.add_embedded_name(file, CompoundName::relative("c"));
  ASSERT_EQ(g.embedded_names(file).size(), 2u);
  EXPECT_EQ(g.embedded_names(file)[0].to_path(), "a/b");
  g.clear_embedded_names(file);
  EXPECT_TRUE(g.embedded_names(file).empty());
}

TEST(NamingGraph, ReplicaGroupsAndWeakEquality) {
  NamingGraph g;
  EntityId f1 = g.add_data_object("bin/cc@m1");
  EntityId f2 = g.add_data_object("bin/cc@m2");
  EntityId f3 = g.add_data_object("other");
  EXPECT_FALSE(g.weakly_equal(f1, f2));
  EXPECT_TRUE(g.weakly_equal(f1, f1));  // identity is weak equality
  ReplicaGroupId group = g.new_replica_group();
  g.set_replica_group(f1, group);
  g.set_replica_group(f2, group);
  EXPECT_TRUE(g.weakly_equal(f1, f2));
  EXPECT_FALSE(g.weakly_equal(f1, f3));
  EXPECT_EQ(g.replica_group(f1), group);
  EXPECT_FALSE(g.replica_group(f3).valid());
}

TEST(NamingGraph, ActivitiesCannotBeReplicated) {
  NamingGraph g;
  EntityId act = g.add_activity("p");
  ReplicaGroupId group = g.new_replica_group();
  EXPECT_THROW(g.set_replica_group(act, group), PreconditionError);
}

TEST(NamingGraph, WeaklyEqualWithInvalidIds) {
  NamingGraph g;
  EntityId f = g.add_data_object("f");
  EXPECT_FALSE(g.weakly_equal(f, EntityId::invalid()));
  EXPECT_FALSE(g.weakly_equal(EntityId::invalid(), EntityId::invalid()));
}

TEST(NamingGraph, EntitiesOfKind) {
  NamingGraph g;
  g.add_activity("a1");
  g.add_context_object("c1");
  g.add_context_object("c2");
  g.add_data_object("d1");
  EXPECT_EQ(g.entities().size(), 4u);
  EXPECT_EQ(g.entities_of_kind(EntityKind::kContextObject).size(), 2u);
  EXPECT_EQ(g.entities_of_kind(EntityKind::kActivity).size(), 1u);
  EXPECT_EQ(g.entities_of_kind(EntityKind::kDataObject).size(), 1u);
}

TEST(NamingGraph, EdgesEnumerateBindings) {
  NamingGraph g;
  EntityId dir = g.add_context_object("d");
  EntityId file = g.add_data_object("f");
  EntityId sub = g.add_context_object("s");
  ASSERT_TRUE(g.bind(dir, Name("f"), file).is_ok());
  ASSERT_TRUE(g.bind(dir, Name("s"), sub).is_ok());
  auto edges = g.edges();
  EXPECT_EQ(edges.size(), 2u);
  for (const auto& edge : edges) EXPECT_EQ(edge.from, dir);
}

TEST(NamingGraph, CloneIsDeepAndIndependent) {
  NamingGraph g;
  EntityId dir = g.add_context_object("d");
  EntityId file = g.add_data_object("f", "original");
  ASSERT_TRUE(g.bind(dir, Name("f"), file).is_ok());
  NamingGraph copy = g.clone();
  // Mutating the copy leaves the original untouched.
  copy.set_data(file, "changed");
  ASSERT_TRUE(copy.unbind(dir, Name("f")).is_ok());
  EXPECT_EQ(g.data(file), "original");
  EXPECT_TRUE(g.lookup(dir, Name("f")).is_ok());
  EXPECT_FALSE(copy.lookup(dir, Name("f")).is_ok());
}

TEST(NamingGraph, SetLabel) {
  NamingGraph g;
  EntityId id = g.add_activity("old");
  g.set_label(id, "new");
  EXPECT_EQ(g.label(id), "new");
}

TEST(EntityKindNames, Stable) {
  EXPECT_EQ(entity_kind_name(EntityKind::kActivity), "activity");
  EXPECT_EQ(entity_kind_name(EntityKind::kDataObject), "data-object");
  EXPECT_EQ(entity_kind_name(EntityKind::kContextObject), "context-object");
}

}  // namespace
}  // namespace namecoh
