// Tests for the transport: delivery, latency, pid remapping (R(sender)),
// reply_to, drops, unreachable/misdelivery, renumbering in flight.
#include <gtest/gtest.h>

#include "net/transport.hpp"

namespace namecoh {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    n1_ = net_.add_network("n1");
    n2_ = net_.add_network("n2");
    m1_ = net_.add_machine(n1_, "m1");
    m2_ = net_.add_machine(n1_, "m2");
    m3_ = net_.add_machine(n2_, "m3");
    a_ = net_.add_endpoint(m1_, "a");
    b_ = net_.add_endpoint(m1_, "b");
    c_ = net_.add_endpoint(m2_, "c");
    d_ = net_.add_endpoint(m3_, "d");
  }

  Pid pid_for(EndpointId target, EndpointId holder) {
    return relativize(net_.location_of(target).value(),
                      net_.location_of(holder).value());
  }

  Simulator sim_;
  Internetwork net_;
  NetworkId n1_, n2_;
  MachineId m1_, m2_, m3_;
  EndpointId a_, b_, c_, d_;
};

TEST_F(TransportTest, DeliversToHandler) {
  Transport tp(sim_, net_);
  int received = 0;
  tp.set_handler(b_, [&](EndpointId self, const Message& m) {
    EXPECT_EQ(self, b_);
    EXPECT_EQ(m.type, 7u);
    ASSERT_EQ(m.payload.size(), 1u);
    EXPECT_EQ(m.payload.u64_at(0), 99u);
    ++received;
  });
  Message msg;
  msg.type = 7;
  msg.payload.add_u64(99);
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), std::move(msg)).is_ok());
  sim_.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(tp.snapshot()["sent"], 1u);
  EXPECT_EQ(tp.snapshot()["delivered"], 1u);
  EXPECT_GT(tp.snapshot()["bytes_sent"], 0u);
}

TEST_F(TransportTest, LatencyByLocality) {
  Transport tp(sim_, net_);
  SimTime t_machine = 0, t_network = 0, t_internet = 0;
  tp.set_handler(b_, [&](EndpointId, const Message&) { t_machine = sim_.now(); });
  tp.set_handler(c_, [&](EndpointId, const Message&) { t_network = sim_.now(); });
  tp.set_handler(d_, [&](EndpointId, const Message&) { t_internet = sim_.now(); });
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), Message{}).is_ok());
  ASSERT_TRUE(tp.send(a_, pid_for(d_, a_), Message{}).is_ok());
  sim_.run();
  EXPECT_EQ(t_machine, tp.config().intra_machine_latency);
  EXPECT_EQ(t_network, tp.config().intra_network_latency);
  EXPECT_EQ(t_internet, tp.config().inter_network_latency);
}

TEST_F(TransportTest, ReplyToLetsReceiverAnswer) {
  Transport tp(sim_, net_);
  bool replied = false;
  tp.set_handler(d_, [&](EndpointId self, const Message& m) {
    // Reply using reply_to verbatim.
    Message reply;
    reply.type = 2;
    EXPECT_TRUE(tp.send(self, m.reply_to, std::move(reply)).is_ok());
  });
  tp.set_handler(a_, [&](EndpointId, const Message& m) {
    EXPECT_EQ(m.type, 2u);
    replied = true;
  });
  Message msg;
  msg.type = 1;
  ASSERT_TRUE(tp.send(a_, pid_for(d_, a_), std::move(msg)).is_ok());
  sim_.run();
  EXPECT_TRUE(replied);
}

TEST_F(TransportTest, EmbeddedPidRemappedAcrossMachines) {
  // a (on m1) sends b's pid — (0,0,l) in a's context — to c on m2.
  // With remapping, c receives a pid that denotes b in *c's* context.
  Transport tp(sim_, net_);
  Pid received_pid;
  tp.set_handler(c_, [&](EndpointId, const Message& m) {
    received_pid = m.payload.pid_at(0);
  });
  Pid b_in_a = pid_for(b_, a_);
  EXPECT_EQ(b_in_a.qualification_level(), 1);  // same machine: (0,0,l)
  Message msg;
  msg.payload.add_pid(b_in_a);
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), std::move(msg)).is_ok());
  sim_.run();
  EXPECT_EQ(tp.snapshot()["pids_remapped"], 1u);
  auto denoted = qualify(received_pid, net_.location_of(c_).value());
  ASSERT_TRUE(denoted.is_ok());
  EXPECT_EQ(net_.endpoint_at(denoted.value()).value(), b_);
}

TEST_F(TransportTest, WithoutRemapEmbeddedPidArrivesVerbatimAndLies) {
  TransportConfig config;
  config.remap_embedded_pids = false;
  Transport tp(sim_, net_, config);
  Pid received_pid;
  tp.set_handler(c_, [&](EndpointId, const Message& m) {
    received_pid = m.payload.pid_at(0);
  });
  Pid b_in_a = pid_for(b_, a_);  // (0,0,l_b): means b only on m1
  Message msg;
  msg.payload.add_pid(b_in_a);
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), std::move(msg)).is_ok());
  sim_.run();
  EXPECT_EQ(tp.snapshot()["pids_remapped"], 0u);
  EXPECT_EQ(received_pid, b_in_a);
  // In c's context the verbatim pid denotes a process on *m2* (or nothing)
  // — not b. This is the §6 incoherence.
  auto denoted = qualify(received_pid, net_.location_of(c_).value());
  ASSERT_TRUE(denoted.is_ok());
  auto who = net_.endpoint_at(denoted.value());
  EXPECT_TRUE(!who.is_ok() || who.value() != b_);
}

TEST_F(TransportTest, ResolvePidInHolderContext) {
  Transport tp(sim_, net_);
  EXPECT_EQ(tp.resolve_pid(a_, pid_for(b_, a_)).value(), b_);
  EXPECT_EQ(tp.resolve_pid(a_, Pid::self()).value(), a_);
  EXPECT_EQ(tp.resolve_pid(c_, pid_for(d_, c_)).value(), d_);
  EXPECT_FALSE(tp.resolve_pid(a_, Pid{0, 0, 77}).is_ok());
  EXPECT_FALSE(tp.resolve_pid(a_, Pid{9, 0, 1}).is_ok());  // malformed
}

TEST_F(TransportTest, UnreachableDestinationCountsAndFails) {
  Transport tp(sim_, net_);
  Status s = tp.send(a_, Pid{0, 0, 77}, Message{});
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(tp.snapshot()["unreachable"], 1u);
  EXPECT_EQ(tp.snapshot()["sent"], 0u);
}

TEST_F(TransportTest, SendFromDeadEndpointFails) {
  Transport tp(sim_, net_);
  ASSERT_TRUE(net_.remove_endpoint(a_).is_ok());
  EXPECT_FALSE(tp.send(a_, Pid{0, 0, 1}, Message{}).is_ok());
}

TEST_F(TransportTest, RenumberInFlightOrphansTheMessage) {
  Transport tp(sim_, net_);
  int received = 0;
  tp.set_handler(c_, [&](EndpointId, const Message&) { ++received; });
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), Message{}).is_ok());
  // Renumber c's machine before delivery: the address no longer exists.
  ASSERT_TRUE(net_.renumber_machine(m2_).is_ok());
  sim_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(tp.snapshot()["unreachable"], 1u);
  EXPECT_EQ(tp.snapshot()["delivered"], 0u);
}

TEST_F(TransportTest, ReuseInFlightMisdelivers) {
  net_.set_address_reuse(true);
  Transport tp(sim_, net_);
  int to_imposter = 0;
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), Message{}).is_ok());
  Location old_c = net_.location_of(c_).value();
  ASSERT_TRUE(net_.renumber_machine(m2_).is_ok());
  MachineId imposter_machine = net_.add_machine(n1_, "imposter-m");
  ASSERT_EQ(net_.maddr_of(imposter_machine).value(), old_c.maddr);
  EndpointId imposter = net_.add_endpoint(imposter_machine, "imposter");
  tp.set_handler(imposter, [&](EndpointId, const Message&) { ++to_imposter; });
  sim_.run();
  EXPECT_EQ(to_imposter, 1);
  EXPECT_EQ(tp.snapshot()["misdelivered"], 1u);
}

TEST_F(TransportTest, DropsAreCountedNotDelivered) {
  TransportConfig config;
  config.drop_probability = 1.0;
  Transport tp(sim_, net_, config);
  int received = 0;
  tp.set_handler(b_, [&](EndpointId, const Message&) { ++received; });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  }
  sim_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(tp.snapshot()["dropped"], 5u);
  EXPECT_EQ(tp.snapshot()["delivered"], 0u);
}

TEST_F(TransportTest, NoHandlerStillCountsDelivered) {
  Transport tp(sim_, net_);
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  sim_.run();
  EXPECT_EQ(tp.snapshot()["delivered"], 1u);
}

TEST_F(TransportTest, ClearHandlerStopsCallbacks) {
  Transport tp(sim_, net_);
  int received = 0;
  tp.set_handler(b_, [&](EndpointId, const Message&) { ++received; });
  tp.clear_handler(b_);
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  sim_.run();
  EXPECT_EQ(received, 0);
}

TEST_F(TransportTest, PayloadSurvivesWireRoundTrip) {
  Transport tp(sim_, net_);
  Payload got;
  tp.set_handler(d_, [&](EndpointId, const Message& m) { got = m.payload; });
  Message msg;
  msg.payload.add_u64(123).add_string("across the internet")
      .add_name("/shared/file");
  Payload sent = msg.payload;
  ASSERT_TRUE(tp.send(a_, pid_for(d_, a_), std::move(msg)).is_ok());
  sim_.run();
  EXPECT_EQ(got, sent);
}

TEST_F(TransportTest, TracerRecordsDeliveriesWhenEnabled) {
  Transport tp(sim_, net_);
  tp.tracer().set_enabled(true);
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), Message{}).is_ok());
  sim_.run();
  EXPECT_EQ(tp.tracer().count(EventKind::kSend), 2u);
  EXPECT_EQ(tp.tracer().count(EventKind::kDeliver), 2u);
  // Unreachable sends are traced too.
  (void)tp.send(a_, Pid{0, 0, 99}, Message{});
  EXPECT_EQ(tp.tracer().count(EventKind::kUnreachable), 1u);
}

TEST_F(TransportTest, TracerDisabledByDefaultRecordsNothing) {
  Transport tp(sim_, net_);
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  sim_.run();
  EXPECT_FALSE(tp.tracer().enabled());
  EXPECT_EQ(tp.tracer().size(), 0u);
  EXPECT_EQ(tp.snapshot()["delivered"], 1u);  // metrics still count
}

// snapshot() must agree with the registry it captures from.
TEST_F(TransportTest, SnapshotMatchesRegistryCounters) {
  TransportConfig config;
  config.drop_probability = 1.0;
  Transport tp(sim_, net_, config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  }
  tp.set_drop_probability(0.0);
  ASSERT_TRUE(tp.send(a_, pid_for(b_, a_), Message{}).is_ok());
  sim_.run();
  const MetricsRegistry& metrics = tp.metrics();
  const StatsSnapshot snap = tp.snapshot();
  EXPECT_EQ(snap["sent"], metrics.counter_value("transport.sent"));
  EXPECT_EQ(snap["dropped"], metrics.counter_value("transport.dropped"));
  EXPECT_EQ(snap["delivered"], metrics.counter_value("transport.delivered"));
  EXPECT_EQ(snap["bytes_sent"],
            metrics.counter_value("transport.bytes_sent"));
  EXPECT_EQ(snap["sent"], 4u);
  EXPECT_EQ(snap["dropped"], 3u);
  EXPECT_EQ(snap["delivered"], 1u);
}

TEST_F(TransportTest, SharedRegistryAcrossTransports) {
  MetricsRegistry shared;
  Transport tp1(sim_, net_, {}, 1, &shared);
  Transport tp2(sim_, net_, {}, 2, &shared);
  ASSERT_TRUE(tp1.send(a_, pid_for(b_, a_), Message{}).is_ok());
  ASSERT_TRUE(tp2.send(a_, pid_for(b_, a_), Message{}).is_ok());
  EXPECT_EQ(shared.counter_value("transport.sent"), 2u);
  EXPECT_EQ(&tp1.metrics(), &shared);
}

TEST_F(TransportTest, DropSeedDeterminism) {
  // Two transports with the same seed drop the same messages.
  auto run = [&](std::uint64_t seed) {
    Simulator sim;
    Internetwork net;
    NetworkId n = net.add_network("n");
    MachineId m = net.add_machine(n, "m");
    EndpointId x = net.add_endpoint(m, "x");
    EndpointId y = net.add_endpoint(m, "y");
    TransportConfig config;
    config.drop_probability = 0.5;
    Transport tp(sim, net, config, seed);
    int received = 0;
    tp.set_handler(y, [&](EndpointId, const Message&) { ++received; });
    Location x_loc = net.location_of(x).value();
    Location y_loc = net.location_of(y).value();
    for (int i = 0; i < 40; ++i) {
      (void)tp.send(x, relativize(y_loc, x_loc), Message{});
    }
    sim.run();
    return received;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST_F(TransportTest, SelfPidInPayloadDenotesSenderAfterRemap) {
  Transport tp(sim_, net_);
  Pid received_pid;
  tp.set_handler(c_, [&](EndpointId, const Message& m) {
    received_pid = m.payload.pid_at(0);
  });
  Message msg;
  msg.payload.add_pid(Pid::self());  // "myself" in a's context
  ASSERT_TRUE(tp.send(a_, pid_for(c_, a_), std::move(msg)).is_ok());
  sim_.run();
  auto denoted = qualify(received_pid, net_.location_of(c_).value());
  ASSERT_TRUE(denoted.is_ok());
  EXPECT_EQ(net_.endpoint_at(denoted.value()).value(), a_);
}

}  // namespace
}  // namespace namecoh
