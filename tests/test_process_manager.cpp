// Tests for the process layer: spawn/fork context inheritance, per-process
// attachments, name & pid exchange through the transport, remote execution
// policies (§5.1, §6 II).
#include <gtest/gtest.h>

#include "os/process_manager.hpp"

namespace namecoh {
namespace {

class ProcessTest : public ::testing::Test {
 protected:
  ProcessTest()
      : fs_(graph_), transport_(sim_, net_), pm_(graph_, fs_, net_, transport_) {
    network_ = net_.add_network("lan");
    m1_ = net_.add_machine(network_, "m1");
    m2_ = net_.add_machine(network_, "m2");
    root1_ = fs_.make_root("m1-root");
    root2_ = fs_.make_root("m2-root");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file_at(root1_, "etc/passwd", "m1 users").is_ok());
    ASSERT_TRUE(fs_.create_file_at(root1_, "data/in.txt", "input").is_ok());
    ASSERT_TRUE(fs_.create_file_at(root2_, "etc/passwd", "m2 users").is_ok());
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  ProcessManager pm_;
  NetworkId network_;
  MachineId m1_, m2_;
  EntityId root1_, root2_;
};

TEST_F(ProcessTest, SpawnWiresEverything) {
  ProcessId p = pm_.spawn(m1_, "p", root1_, root1_);
  EXPECT_TRUE(pm_.alive(p));
  EXPECT_EQ(pm_.process_count(), 1u);
  const ProcessInfo& info = pm_.info(p);
  EXPECT_TRUE(graph_.is_activity(info.activity));
  EXPECT_TRUE(graph_.is_context_object(info.context_object));
  EXPECT_TRUE(net_.has_endpoint(info.endpoint));
  EXPECT_EQ(pm_.by_endpoint(info.endpoint).value(), p);
  EXPECT_EQ(pm_.root_of(p).value(), root1_);
  EXPECT_EQ(pm_.cwd_of(p).value(), root1_);
  // The closure table knows R(p).
  EXPECT_EQ(pm_.closures().activity_context(info.activity).value(),
            info.context_object);
}

TEST_F(ProcessTest, ResolveInternal) {
  ProcessId p = pm_.spawn(m1_, "p", root1_, root1_);
  Resolution res = pm_.resolve_internal(p, "/etc/passwd");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "m1 users");
  EXPECT_FALSE(pm_.resolve_internal(p, "/nope").ok());
  EXPECT_FALSE(pm_.resolve_internal(p, "").ok());
}

TEST_F(ProcessTest, SetRootAndCwd) {
  ProcessId p = pm_.spawn(m1_, "p", root1_, root1_);
  ASSERT_TRUE(pm_.set_root(p, root2_).is_ok());
  Resolution res = pm_.resolve_internal(p, "/etc/passwd");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "m2 users");
  EntityId etc1 = pm_.resolve_internal(p, "/etc").entity;
  ASSERT_TRUE(pm_.set_cwd(p, etc1).is_ok());
  EXPECT_EQ(pm_.resolve_internal(p, "passwd").entity,
            pm_.resolve_internal(p, "/etc/passwd").entity);
  // Non-directories rejected.
  EntityId file = pm_.resolve_internal(p, "/etc/passwd").entity;
  EXPECT_FALSE(pm_.set_root(p, file).is_ok());
  EXPECT_FALSE(pm_.set_cwd(p, file).is_ok());
}

TEST_F(ProcessTest, ForkInheritsContextByCopy) {
  ProcessId parent = pm_.spawn(m1_, "parent", root1_, root1_);
  ProcessId child = pm_.fork_child(parent, "child");
  EXPECT_EQ(pm_.info(child).parent, parent);
  EXPECT_EQ(pm_.info(child).machine, m1_);
  // Coherent now: same meaning for every name (§5.1).
  EXPECT_EQ(pm_.resolve_internal(parent, "/etc/passwd").entity,
            pm_.resolve_internal(child, "/etc/passwd").entity);
  // Divergence after the child changes its root: the copy is independent.
  ASSERT_TRUE(pm_.set_root(child, root2_).is_ok());
  EXPECT_NE(pm_.resolve_internal(parent, "/etc/passwd").entity,
            pm_.resolve_internal(child, "/etc/passwd").entity);
  EXPECT_EQ(pm_.root_of(parent).value(), root1_);
}

TEST_F(ProcessTest, AttachInContextAddsPerProcessName) {
  ProcessId p = pm_.spawn(m1_, "p", root1_, root1_);
  ASSERT_TRUE(pm_.attach_in_context(p, Name("remote"), root2_).is_ok());
  Resolution res = pm_.resolve_internal(p, "remote/etc/passwd");
  // "remote/…" is relative, so it goes through "." = root1; attach put the
  // binding in the process context, not in root1. Resolve accordingly:
  EXPECT_FALSE(res.ok());
  // The attachment is visible as a bare first component via the process
  // context itself — exactly how Plan 9 exposes per-process names.
  Resolution direct =
      resolve(graph_, graph_.context(pm_.info(p).context_object),
              CompoundName::relative("remote/etc/passwd"));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(graph_.data(direct.entity), "m2 users");
  // Duplicate attach fails.
  EXPECT_EQ(pm_.attach_in_context(p, Name("remote"), root2_).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ProcessTest, SendNameLandsInInbox) {
  ProcessId sender = pm_.spawn(m1_, "sender", root1_, root1_);
  ProcessId receiver = pm_.spawn(m2_, "receiver", root2_, root2_);
  ASSERT_TRUE(pm_.send_name_to(sender, receiver, "/etc/passwd").is_ok());
  pm_.settle();
  ASSERT_EQ(pm_.received_names().size(), 1u);
  const ReceivedName& rn = pm_.received_names()[0];
  EXPECT_EQ(rn.receiver, receiver);
  EXPECT_EQ(rn.sender, sender);
  EXPECT_EQ(rn.path, "/etc/passwd");
  EXPECT_GT(rn.at, 0u);
}

TEST_F(ProcessTest, ResolveReceivedUnderRules) {
  // The heart of Fig. 2: the same exchanged name, two rules, two meanings.
  ProcessId sender = pm_.spawn(m1_, "sender", root1_, root1_);
  ProcessId receiver = pm_.spawn(m2_, "receiver", root2_, root2_);
  ASSERT_TRUE(pm_.send_name_to(sender, receiver, "/etc/passwd").is_ok());
  pm_.settle();
  ASSERT_EQ(pm_.received_names().size(), 1u);
  const ReceivedName& rn = pm_.received_names()[0];

  Resolution as_receiver = pm_.resolve_received(rn, ByReceiverRule{});
  ASSERT_TRUE(as_receiver.ok());
  EXPECT_EQ(graph_.data(as_receiver.entity), "m2 users");  // wrong file!

  Resolution as_sender = pm_.resolve_received(rn, BySenderRule{});
  ASSERT_TRUE(as_sender.ok());
  EXPECT_EQ(graph_.data(as_sender.entity), "m1 users");  // sender's meaning

  // R(sender) restores coherence with what the sender meant.
  EXPECT_TRUE(
      as_sender.same_entity(pm_.resolve_internal(sender, "/etc/passwd")));
}

TEST_F(ProcessTest, SendPidOfRemapsInFlight) {
  ProcessId a = pm_.spawn(m1_, "a", root1_, root1_);
  ProcessId b = pm_.spawn(m1_, "b", root1_, root1_);
  ProcessId c = pm_.spawn(m2_, "c", root2_, root2_);
  // a sends b's pid to c across machines.
  ASSERT_TRUE(pm_.send_pid_of(a, c, b).is_ok());
  pm_.settle();
  ASSERT_EQ(pm_.received_pids().size(), 1u);
  const ReceivedPid& rp = pm_.received_pids()[0];
  EXPECT_EQ(rp.receiver, c);
  EXPECT_EQ(rp.sender, a);
  // The received pid denotes b in c's context.
  EXPECT_EQ(pm_.resolve_received_pid(rp).value(), b);
}

TEST_F(ProcessTest, SendPidWithoutRemapIncoherent) {
  transport_.set_remap_embedded_pids(false);
  ProcessId a = pm_.spawn(m1_, "a", root1_, root1_);
  ProcessId b = pm_.spawn(m1_, "b", root1_, root1_);
  ProcessId c = pm_.spawn(m2_, "c", root2_, root2_);
  ProcessId c2 = pm_.spawn(m2_, "c2", root2_, root2_);
  (void)c2;
  ASSERT_TRUE(pm_.send_pid_of(a, c, b).is_ok());
  pm_.settle();
  ASSERT_EQ(pm_.received_pids().size(), 1u);
  auto resolved = pm_.resolve_received_pid(pm_.received_pids()[0]);
  // The verbatim (0,0,l_b) pid denotes some process on *m2* — not b.
  EXPECT_TRUE(!resolved.is_ok() || resolved.value() != b);
}

TEST_F(ProcessTest, KillRemovesEndpointAndRefusesUse) {
  ProcessId p = pm_.spawn(m1_, "p", root1_, root1_);
  ASSERT_TRUE(pm_.kill(p).is_ok());
  EXPECT_FALSE(pm_.alive(p));
  EXPECT_EQ(pm_.process_count(), 0u);
  EXPECT_FALSE(pm_.kill(p).is_ok());
  EXPECT_FALSE(pm_.send_name_to(p, p, "/x").is_ok());
  EXPECT_FALSE(pm_.location_of(p).is_ok());
}

TEST_F(ProcessTest, RemoteExecInvokerRoot) {
  ProcessId parent = pm_.spawn(m1_, "parent", root1_, root1_);
  auto child = pm_.remote_exec(parent, m2_, "child",
                               RemoteExecPolicy::kInvokerRoot, root2_);
  ASSERT_TRUE(child.is_ok());
  EXPECT_EQ(pm_.info(child.value()).machine, m2_);
  // Parameters stay coherent: same meaning of the passed name.
  EXPECT_EQ(pm_.resolve_internal(child.value(), "/data/in.txt").entity,
            pm_.resolve_internal(parent, "/data/in.txt").entity);
  // But the executor's local files are invisible under their local names:
  // /etc/passwd is m1's, not m2's.
  EXPECT_EQ(graph_.data(
                pm_.resolve_internal(child.value(), "/etc/passwd").entity),
            "m1 users");
}

TEST_F(ProcessTest, RemoteExecExecutorRoot) {
  ProcessId parent = pm_.spawn(m1_, "parent", root1_, root1_);
  auto child = pm_.remote_exec(parent, m2_, "child",
                               RemoteExecPolicy::kExecutorRoot, root2_);
  ASSERT_TRUE(child.is_ok());
  // Local access works…
  EXPECT_EQ(graph_.data(
                pm_.resolve_internal(child.value(), "/etc/passwd").entity),
            "m2 users");
  // …but the parent's parameter name resolves to nothing (or the wrong
  // thing): /data/in.txt only exists on m1.
  EXPECT_FALSE(pm_.resolve_internal(child.value(), "/data/in.txt").ok());
}

TEST_F(ProcessTest, RemoteExecPrivateAttachGivesBoth) {
  ProcessId parent = pm_.spawn(m1_, "parent", root1_, root1_);
  auto child = pm_.remote_exec(parent, m2_, "child",
                               RemoteExecPolicy::kPrivateAttach, root2_,
                               Name("m2local"));
  ASSERT_TRUE(child.is_ok());
  // Parameter coherence: the parent's names mean the same.
  EXPECT_EQ(pm_.resolve_internal(child.value(), "/data/in.txt").entity,
            pm_.resolve_internal(parent, "/data/in.txt").entity);
  // And the executor's tree is reachable under the fresh attachment.
  EXPECT_EQ(graph_.data(pm_.resolve_internal(child.value(),
                                             "/m2local/etc/passwd")
                            .entity),
            "m2 users");
}

TEST_F(ProcessTest, RemoteExecPrivateAttachNameCollisionFails) {
  ProcessId parent = pm_.spawn(m1_, "parent", root1_, root1_);
  // "etc" collides with a parent-root entry.
  auto child = pm_.remote_exec(parent, m2_, "child",
                               RemoteExecPolicy::kPrivateAttach, root2_,
                               Name("etc"));
  EXPECT_FALSE(child.is_ok());
  EXPECT_EQ(child.code(), StatusCode::kAlreadyExists);
}

TEST_F(ProcessTest, RemoteExecValidation) {
  ProcessId parent = pm_.spawn(m1_, "parent", root1_, root1_);
  EntityId file = pm_.resolve_internal(parent, "/etc/passwd").entity;
  EXPECT_FALSE(pm_.remote_exec(parent, m2_, "x",
                               RemoteExecPolicy::kExecutorRoot, file)
                   .is_ok());
  ASSERT_TRUE(pm_.kill(parent).is_ok());
  EXPECT_FALSE(pm_.remote_exec(parent, m2_, "x",
                               RemoteExecPolicy::kInvokerRoot, root2_)
                   .is_ok());
}

TEST_F(ProcessTest, ClearInboxes) {
  ProcessId a = pm_.spawn(m1_, "a", root1_, root1_);
  ProcessId b = pm_.spawn(m1_, "b", root1_, root1_);
  ASSERT_TRUE(pm_.send_name_to(a, b, "/x").is_ok());
  ASSERT_TRUE(pm_.send_pid_of(a, b, a).is_ok());
  pm_.settle();
  EXPECT_FALSE(pm_.received_names().empty());
  EXPECT_FALSE(pm_.received_pids().empty());
  pm_.clear_inboxes();
  EXPECT_TRUE(pm_.received_names().empty());
  EXPECT_TRUE(pm_.received_pids().empty());
}

TEST_F(ProcessTest, PolicyNames) {
  EXPECT_EQ(remote_exec_policy_name(RemoteExecPolicy::kInvokerRoot),
            "invoker-root");
  EXPECT_EQ(remote_exec_policy_name(RemoteExecPolicy::kExecutorRoot),
            "executor-root");
  EXPECT_EQ(remote_exec_policy_name(RemoteExecPolicy::kPrivateAttach),
            "private-attach");
}

}  // namespace
}  // namespace namecoh
