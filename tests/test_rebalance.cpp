// Online rebalancing tests (docs/REBALANCING.md): MigrationDriver phase
// machine (copy, catch-up of racing rebinds, cutover, forwarding window,
// abort on an unreachable target), forwarding-tombstone semantics on the
// old owner, same-seed determinism of a full migration under closed-loop
// load, the RebalancePlanner's load/dominance logic, and ring-change
// planning (delegate_children_by_hash idempotence + plan_ring_change).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph_ops.hpp"
#include "ns/name_service.hpp"
#include "ns/rebalance.hpp"
#include "ns/shard_ring.hpp"
#include "sim/faults.hpp"
#include "workload/parallel.hpp"

namespace namecoh {
namespace {

// --- MigrationDriver over a live service --------------------------------------

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : transport_(sim_, net_), faults_(sim_),
        service_(graph_, net_, transport_, homes_),
        driver_(graph_, homes_, service_, sim_) {
    transport_.attach_faults(&faults_);
    NetworkId lan = net_.add_network("lan");
    ma_ = net_.add_machine(lan, "ma");
    mb_ = net_.add_machine(lan, "mb");
    mc_ = net_.add_machine(lan, "mc");
    mclient_ = net_.add_machine(lan, "mclient");
    root_ = graph_.add_context_object("root");
    tree_ = build_context_tree(graph_, root_, /*fanout=*/2, /*depth=*/3);
    s0_ = homes_.add_shard({ma_});
    s1_ = homes_.add_shard({mb_});
    s2_ = homes_.add_shard({mc_});
    // x_ = root's first child; its subtree (1 + 2 + 4 = 7 contexts) lives
    // on s1. s2 starts empty — the migration target.
    x_ = tree_.levels[1][0];
    EXPECT_TRUE(homes_.install_delegation(graph_, x_, s1_).is_ok());
    EXPECT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
    leaf_ = graph_.add_data_object("leaf");
    EXPECT_TRUE(graph_.bind(x_, Name("f"), leaf_).is_ok());
    service_.add_server(ma_);
    service_.add_server(mb_);
    service_.add_server(mc_);
    service_.add_server(mclient_);
  }

  [[nodiscard]] std::uint64_t server_counter(const std::string& what) const {
    return transport_.metrics().counter_value("ns.server." + what);
  }

  /// Options small enough that every phase is observable in a short run.
  static MigrationOptions fast_options() {
    MigrationOptions opts;
    opts.copy_batch = 2;
    opts.copy_interval = 10;
    opts.settle_delay = 50;
    opts.forward_window = 2000;
    return opts;
  }

  NamingGraph graph_;
  Internetwork net_;
  Simulator sim_;
  Transport transport_;
  FaultInjector faults_;
  AuthorityMap homes_;
  NameService service_;
  MigrationDriver driver_;
  MachineId ma_, mb_, mc_, mclient_;
  EntityId root_, x_, leaf_;
  TreeBuildResult tree_;
  ShardId s0_, s1_, s2_;
};

TEST_F(MigrationTest, CopiesCatchesUpAndCutsOver) {
  // A rebind lands on x_ *after* the first copy round has snapshotted it,
  // so the catch-up phase must detect the divergence and re-push.
  const EntityId extra = graph_.add_data_object("extra");
  sim_.schedule_at(15, [&] {
    ASSERT_TRUE(graph_.bind(x_, Name("zz"), extra).is_ok());
  });

  ASSERT_TRUE(driver_.start(x_, s2_, fast_options()).is_ok());
  EXPECT_EQ(driver_.phase(), MigrationPhase::kCopy);
  const MigrationReport& report = driver_.run_to_completion();

  EXPECT_EQ(report.phase, MigrationPhase::kDone);
  EXPECT_EQ(report.from, s1_);
  EXPECT_EQ(report.to, s2_);
  EXPECT_EQ(report.contexts, 7u);
  EXPECT_EQ(report.moved, 7u);
  EXPECT_GE(report.catchup_rounds, 1u);
  // 7 initial copies plus at least the re-push of the raced context.
  EXPECT_GE(report.snapshots_pushed, 8u);
  EXPECT_TRUE(report.error.empty());

  // The whole subtree now answers from s2, at the rebound epoch.
  for (const EntityId ctx : homes_.shard_subtree(graph_, x_)) {
    EXPECT_EQ(homes_.shard_of(ctx), s2_);
  }
  ASSERT_TRUE(service_.replica_epoch(mc_, x_).has_value());
  EXPECT_GE(*service_.replica_epoch(mc_, x_), graph_.rebind_epoch(x_));

  // Resolution through the migrated subtree works end to end: the root's
  // referral now points straight at the new owner.
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "c");
  Result<EntityId> hit = client.resolve(root_, CompoundName::relative("c0/f"));
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value(), leaf_);
  Result<EntityId> zz = client.resolve(root_, CompoundName::relative("c0/zz"));
  ASSERT_TRUE(zz.is_ok());
  EXPECT_EQ(zz.value(), extra);
}

TEST_F(MigrationTest, StartValidatesItsArguments) {
  // Unknown target shard, unowned root, and a no-op move are all refused
  // without touching the map.
  EXPECT_FALSE(driver_.start(x_, ShardId{99}).is_ok());
  EXPECT_FALSE(driver_.start(leaf_, s2_).is_ok());
  EXPECT_FALSE(driver_.start(x_, s1_).is_ok());
  EXPECT_EQ(driver_.phase(), MigrationPhase::kIdle);
  EXPECT_EQ(homes_.shard_of(x_), s1_);

  // And a second start while one is active is refused too.
  ASSERT_TRUE(driver_.start(x_, s2_, fast_options()).is_ok());
  EXPECT_FALSE(driver_.start(x_, s2_, fast_options()).is_ok());
  driver_.run_to_completion();
}

TEST_F(MigrationTest, ForwardingWindowRefersStaleClients) {
  ResolverClientConfig cfg;
  cfg.shard_routing = true;
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "c", cfg);

  // First resolve teaches the client glue: x_ lives on s1, reachable at
  // mb. That route goes stale the moment the cutover lands.
  Result<EntityId> warm =
      client.resolve(root_, CompoundName::relative("c0/f"));
  ASSERT_TRUE(warm.is_ok());

  MigrationOptions opts = fast_options();
  opts.forward_window = 5000;
  ASSERT_TRUE(driver_.start(x_, s2_, opts).is_ok());
  // Drive only to the cutover: active() drops when kForwarding begins.
  sim_.run_while([&] { return driver_.active(); });
  ASSERT_EQ(driver_.phase(), MigrationPhase::kForwarding);
  EXPECT_GT(service_.forwarding_count(mb_), 0u);

  // A lookup starting *at* x_ reuses the stale learned route, lands on the
  // old owner, and gets a forwarding referral (tombstone hit) pointing at
  // the new one — the lookup still succeeds.
  EXPECT_EQ(server_counter("forwarded"), 0u);
  Result<EntityId> stale = client.resolve(x_, CompoundName::relative("f"));
  ASSERT_TRUE(stale.is_ok());
  EXPECT_EQ(stale.value(), leaf_);
  EXPECT_EQ(server_counter("forwarded"), 1u);
  EXPECT_GE(transport_.metrics().counter_value("ns.shard.route_reuses"), 1u);

  // The referral's glue healed the client: the next lookup goes straight
  // to s2 and the old owner is never bothered again.
  Result<EntityId> healed = client.resolve(x_, CompoundName::relative("f"));
  ASSERT_TRUE(healed.is_ok());
  EXPECT_EQ(healed.value(), leaf_);
  EXPECT_EQ(server_counter("forwarded"), 1u);

  driver_.run_to_completion();
  EXPECT_EQ(driver_.phase(), MigrationPhase::kDone);
}

TEST_F(MigrationTest, ForwardingWindowExpires) {
  ResolverClientConfig cfg;
  cfg.shard_routing = true;
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "c", cfg);
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("c0/f")).is_ok());

  MigrationOptions opts = fast_options();
  opts.forward_window = 1000;
  ASSERT_TRUE(driver_.start(x_, s2_, opts).is_ok());
  const MigrationReport& report = driver_.run_to_completion();
  ASSERT_EQ(report.phase, MigrationPhase::kDone);

  // run_to_completion drove past the window: the tombstones are gone.
  EXPECT_EQ(service_.forwarding_count(mb_), 0u);

  // The stale-routed lookup still lands on the old owner, but now gets a
  // plain referral (no forwarded bump) — correctness never depended on
  // the tombstone, only the "this was just migrated" signal did.
  const std::uint64_t forwarded_before = server_counter("forwarded");
  Result<EntityId> late = client.resolve(x_, CompoundName::relative("f"));
  ASSERT_TRUE(late.is_ok());
  EXPECT_EQ(late.value(), leaf_);
  EXPECT_EQ(server_counter("forwarded"), forwarded_before);
}

TEST_F(MigrationTest, AbortsCleanlyOnPartitionedTarget) {
  // Snapshots originate at the subtree's primary (mb). With mb -> mc cut,
  // no copy ever lands and the driver must give up after its catch-up
  // budget — leaving the map exactly as it was.
  faults_.partition_one_way(mb_.value(), mc_.value());

  MigrationOptions opts = fast_options();
  opts.copy_batch = 4;
  opts.settle_delay = 20;
  opts.max_catchup_rounds = 2;
  ASSERT_TRUE(driver_.start(x_, s2_, opts).is_ok());
  const MigrationReport& report = driver_.run_to_completion();

  EXPECT_EQ(report.phase, MigrationPhase::kAborted);
  EXPECT_FALSE(report.error.empty());
  EXPECT_NE(report.error.find("catch-up"), std::string::npos);
  EXPECT_EQ(report.cutover_at, 0u);
  EXPECT_EQ(report.moved, 0u);

  // Ownership untouched, no forwarding installed anywhere.
  for (const EntityId ctx : homes_.shard_subtree(graph_, x_)) {
    EXPECT_EQ(homes_.shard_of(ctx), s1_);
  }
  EXPECT_EQ(service_.forwarding_count(mb_), 0u);
  EXPECT_EQ(service_.forwarding_count(mc_), 0u);

  // The namespace keeps resolving through the old owner as if the
  // migration had never been attempted.
  ResolverClient client(graph_, net_, transport_, sim_, service_, mclient_,
                        "c");
  Result<EntityId> hit = client.resolve(root_, CompoundName::relative("c0/f"));
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value(), leaf_);
}

// --- Same-seed determinism under closed-loop load -----------------------------

struct MigrationRunDigest {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t snapshots_pushed = 0;
  std::uint64_t catchup_rounds = 0;
  std::uint64_t cutover_at = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t route_reuses = 0;
  SimTime finished = 0;

  bool operator==(const MigrationRunDigest&) const = default;
};

MigrationRunDigest run_migration_under_load(std::uint64_t seed) {
  NamingGraph graph;
  Internetwork net;
  Simulator sim;
  Transport transport(sim, net);
  AuthorityMap homes;
  NameService service(graph, net, transport, homes);

  NetworkId lan = net.add_network("lan");
  MachineId ma = net.add_machine(lan, "ma");
  MachineId mb = net.add_machine(lan, "mb");
  MachineId mc = net.add_machine(lan, "mc");
  MachineId mclient = net.add_machine(lan, "mclient");
  EntityId root = graph.add_context_object("root");
  TreeBuildResult tree = build_context_tree(graph, root, 2, 3);
  ShardId s0 = homes.add_shard({ma});
  ShardId s1 = homes.add_shard({mb});
  ShardId s2 = homes.add_shard({mc});
  (void)s0;
  EntityId x = tree.levels[1][0];
  EXPECT_TRUE(homes.install_delegation(graph, x, s1).is_ok());
  EXPECT_TRUE(homes.install_delegation(graph, root, ShardId{0}).is_ok());
  EntityId leaf = graph.add_data_object("leaf");
  EXPECT_TRUE(graph.bind(x, Name("f"), leaf).is_ok());
  service.add_server(ma);
  service.add_server(mb);
  service.add_server(mc);
  service.add_server(mclient);
  service.set_service_time(5);

  ResolverClientConfig cfg;
  cfg.shard_routing = true;
  cfg.retry.request_timeout = 100000;
  ResolverClient client(graph, net, transport, sim, service, mclient, "c",
                        cfg);

  MigrationDriver driver(graph, homes, service, sim);
  MigrationOptions opts;
  opts.copy_batch = 2;
  opts.copy_interval = 10;
  opts.settle_delay = 50;
  opts.forward_window = 1500;
  sim.schedule_at(50, [&] {
    EXPECT_TRUE(driver.start(x, s2, opts).is_ok());
  });

  std::vector<ParallelQuery> queries = {
      {root, CompoundName::relative("c0/f")},
      {x, CompoundName::relative("f")},
      {root, CompoundName::relative("c1/c0")},
  };
  ParallelSpec spec;
  spec.activities = 8;
  spec.total_resolutions = 300;
  spec.seed = seed;
  spec.zipf_s = 0.9;
  ParallelOutcome outcome = run_parallel(sim, client, queries, spec);
  const MigrationReport& report = driver.run_to_completion();
  EXPECT_EQ(report.phase, MigrationPhase::kDone);

  MigrationRunDigest digest;
  digest.ok = outcome.ok;
  digest.failed = outcome.failed;
  digest.snapshots_pushed = report.snapshots_pushed;
  digest.catchup_rounds = report.catchup_rounds;
  digest.cutover_at = report.cutover_at;
  digest.forwarded =
      transport.metrics().counter_value("ns.server.forwarded");
  digest.route_reuses =
      transport.metrics().counter_value("ns.shard.route_reuses");
  digest.finished = outcome.finished;
  return digest;
}

TEST(MigrationDeterminismTest, SameSeedSameMigration) {
  const MigrationRunDigest first = run_migration_under_load(42);
  const MigrationRunDigest second = run_migration_under_load(42);
  EXPECT_EQ(first, second);
  // And the migration never failed a lookup: closed-loop traffic rode
  // straight through copy, cutover and the forwarding window.
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(first.ok, 300u);
  EXPECT_GT(first.cutover_at, 50u);
}

// --- RebalancePlanner ---------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    NetworkId lan = net_.add_network("lan");
    ma_ = net_.add_machine(lan, "ma");
    mb_ = net_.add_machine(lan, "mb");
    root_ = graph_.add_context_object("root");
    tree_ = build_context_tree(graph_, root_, /*fanout=*/2, /*depth=*/2);
    s0_ = homes_.add_shard({ma_});
    s1_ = homes_.add_shard({mb_});
    EXPECT_TRUE(homes_.install_delegation(graph_, root_, s0_).is_ok());
    a_ = tree_.levels[1][0];
    b_ = tree_.levels[1][1];
  }

  void load(MachineId m, std::uint64_t served, std::uint64_t wait_ticks) {
    const std::string prefix = "ns.server.m" + std::to_string(m.value());
    metrics_.counter(prefix + ".served").inc(served);
    metrics_.counter(prefix + ".wait_ticks").inc(wait_ticks);
  }

  void hits(EntityId root, std::uint64_t n) {
    metrics_
        .counter("ns.server.subtree." + std::to_string(root.value()) +
                 ".hits")
        .inc(n);
  }

  NamingGraph graph_;
  Internetwork net_;
  AuthorityMap homes_;
  MetricsRegistry metrics_;
  MachineId ma_, mb_;
  EntityId root_, a_, b_;
  TreeBuildResult tree_;
  ShardId s0_, s1_;
};

TEST_F(PlannerTest, ProposesSplittingHottestSubtreeOffDominatingShard) {
  load(ma_, 200, 10000);  // mean wait 50: queueing hard
  load(mb_, 200, 400);    // mean wait 2: comfortably idle
  hits(a_, 30);
  hits(b_, 170);  // b_ is the hotter candidate

  RebalancePlanner planner(homes_, metrics_);
  const std::vector<ShardLoad> loads = planner.shard_loads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0].mean_wait, 50.0);
  EXPECT_DOUBLE_EQ(loads[1].mean_wait, 2.0);

  const std::vector<EntityId> candidates = {a_, b_};
  RebalancePlan plan = planner.propose(candidates);
  EXPECT_TRUE(plan.rebalance);
  EXPECT_EQ(plan.subtree, b_);
  EXPECT_EQ(plan.from, s0_);
  EXPECT_EQ(plan.to, s1_);
  EXPECT_FALSE(plan.reason.empty());
}

TEST_F(PlannerTest, NoPlanWithoutDominance) {
  // Both shards queue about equally: nothing dominates, nothing moves.
  load(ma_, 200, 4000);
  load(mb_, 200, 3600);
  hits(a_, 100);
  RebalancePlanner planner(homes_, metrics_);
  const std::vector<EntityId> candidates = {a_, b_};
  RebalancePlan plan = planner.propose(candidates);
  EXPECT_FALSE(plan.rebalance);
  EXPECT_FALSE(plan.reason.empty());
}

TEST_F(PlannerTest, NoPlanBelowTrafficFloor) {
  // Huge mean wait but almost no requests: noise, not load.
  load(ma_, 4, 4000);
  load(mb_, 4, 8);
  hits(a_, 2);
  RebalancePlanner planner(homes_, metrics_);
  const std::vector<EntityId> candidates = {a_, b_};
  EXPECT_FALSE(planner.propose(candidates).rebalance);
}

TEST_F(PlannerTest, NoPlanWhenNoCandidateLivesOnTheHotShard) {
  load(ma_, 200, 10000);
  load(mb_, 200, 400);
  // Candidates exist but none recorded any hits — nothing to pick.
  RebalancePlanner planner(homes_, metrics_);
  const std::vector<EntityId> candidates = {a_, b_};
  RebalancePlan plan = planner.propose(candidates);
  EXPECT_FALSE(plan.rebalance);
  EXPECT_FALSE(plan.reason.empty());
}

// --- Ring changes: idempotent re-placement + migration plans ------------------

class RingChangeTest : public ::testing::Test {
 protected:
  RingChangeTest() {
    NetworkId lan = net_.add_network("lan");
    ma_ = net_.add_machine(lan, "ma");
    mb_ = net_.add_machine(lan, "mb");
    mc_ = net_.add_machine(lan, "mc");
    root_ = graph_.add_context_object("root");
    tree_ = build_context_tree(graph_, root_, /*fanout=*/32, /*depth=*/1);
    s0_ = homes_.add_shard({ma_});
    s1_ = homes_.add_shard({mb_});
    s2_ = homes_.add_shard({mc_});
  }

  NamingGraph graph_;
  Internetwork net_;
  AuthorityMap homes_;
  MachineId ma_, mb_, mc_;
  EntityId root_;
  TreeBuildResult tree_;
  ShardId s0_, s1_, s2_;
};

TEST_F(RingChangeTest, RerunAfterRingGrowthReportsMovesWithoutReclaiming) {
  ShardRing ring;
  ring.add_shard(s0_);
  ring.add_shard(s1_);
  ASSERT_TRUE(homes_.delegate_children_by_hash(graph_, root_, ring).is_ok());

  std::unordered_map<std::uint64_t, ShardId> before;
  for (const EntityId child : tree_.levels[1]) {
    before[child.value()] = homes_.shard_of(child);
  }

  // Re-running against the *same* ring is a pure no-op.
  std::vector<EntityId> moved;
  ASSERT_TRUE(
      homes_.delegate_children_by_hash(graph_, root_, ring, &moved).is_ok());
  EXPECT_TRUE(moved.empty());

  // Grow the ring: some children's ring placement changes. The re-run must
  // report them as moved and leave their current ownership alone — no
  // silent re-claiming.
  ring.add_shard(s2_);
  moved.clear();
  ASSERT_TRUE(
      homes_.delegate_children_by_hash(graph_, root_, ring, &moved).is_ok());
  std::size_t expected_moves = 0;
  for (const EntityId child : tree_.levels[1]) {
    EXPECT_EQ(homes_.shard_of(child), before[child.value()]);
    if (ring.shard_for(child) != before[child.value()]) ++expected_moves;
  }
  EXPECT_EQ(moved.size(), expected_moves);
  ASSERT_GT(expected_moves, 0u)
      << "ring growth moved nothing; pick a different fanout";

  // plan_ring_change turns exactly that delta into migration steps.
  std::vector<MigrationStep> steps =
      plan_ring_change(graph_, homes_, root_, ring);
  ASSERT_EQ(steps.size(), expected_moves);
  for (const MigrationStep& step : steps) {
    EXPECT_EQ(step.from, before[step.root.value()]);
    EXPECT_EQ(step.to, ring.shard_for(step.root));
    EXPECT_NE(step.from, step.to);
    // Applying the step settles it; the map now matches the ring here.
    ASSERT_TRUE(homes_.migrate_subtree(graph_, step.root, step.to).is_ok());
    EXPECT_EQ(homes_.shard_of(step.root), step.to);
  }

  // With every step applied, both the re-run and the planner agree the map
  // is converged.
  moved.clear();
  ASSERT_TRUE(
      homes_.delegate_children_by_hash(graph_, root_, ring, &moved).is_ok());
  EXPECT_TRUE(moved.empty());
  EXPECT_TRUE(plan_ring_change(graph_, homes_, root_, ring).empty());
}

TEST_F(RingChangeTest, RemoveShardRemapsOnlyItsSlice) {
  ShardRing ring;
  ring.add_shard(s0_);
  ring.add_shard(s1_);
  ring.add_shard(s2_);
  ASSERT_EQ(ring.shard_count(), 3u);

  std::unordered_map<std::uint64_t, ShardId> before;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    before[v] = ring.shard_for(EntityId{v});
  }

  ring.remove_shard(s1_);
  EXPECT_EQ(ring.shard_count(), 2u);
  std::size_t remapped = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const ShardId now = ring.shard_for(EntityId{v});
    EXPECT_NE(now, s1_);
    if (before[v] == s1_) {
      ++remapped;
    } else {
      // Keys that weren't on the removed shard must not move at all.
      EXPECT_EQ(now, before[v]);
    }
  }
  EXPECT_GT(remapped, 0u);

  // Removing a shard that was never added is a no-op.
  ring.remove_shard(ShardId{7});
  EXPECT_EQ(ring.shard_count(), 2u);
}

}  // namespace
}  // namespace namecoh
