// Tests for the §5 naming schemes. Each test asserts a *claim from the
// paper's text* about the scheme's degree of coherence.
#include <gtest/gtest.h>

#include "coherence/coherence.hpp"
#include "schemes/crosslink.hpp"
#include "schemes/newcastle.hpp"
#include "schemes/per_process.hpp"
#include "schemes/shared_graph.hpp"
#include "schemes/single_graph.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

// Populate both sites with the standard two-site fixture: identical common
// structure, disjoint unique names.
void populate_two_sites(FileSystem& fs, NamingScheme& scheme, SiteId s1,
                        SiteId s2) {
  TreeSpec spec;
  spec.depth = 2;
  spec.dirs_per_dir = 2;
  spec.files_per_dir = 3;
  spec.common_fraction = 0.6;
  spec.site_tag = "s1";
  populate_tree(fs, scheme.site_tree(s1), spec, /*seed=*/42);
  spec.site_tag = "s2";
  populate_tree(fs, scheme.site_tree(s2), spec, /*seed=*/42);
}

TEST(SingleGraph, AllAbsoluteNamesAreGlobal) {
  // §5.1: root bound to the tree root for all processes → high coherence.
  NamingGraph graph;
  FileSystem fs(graph);
  SingleGraphScheme scheme(fs);
  SiteId s1 = scheme.add_site("m1");
  SiteId s2 = scheme.add_site("m2");
  populate_two_sites(fs, scheme, s1, s2);
  scheme.finalize();

  CoherenceAnalyzer analyzer(graph);
  EntityId c1 = scheme.make_site_context(s1);
  EntityId c2 = scheme.make_site_context(s2);
  auto probes = absolutize(probes_from_dir(graph, scheme.global_root()));
  ASSERT_GT(probes.size(), 10u);
  DegreeReport report = analyzer.degree(c1, c2, probes);
  EXPECT_DOUBLE_EQ(report.strict.fraction(), 1.0);
}

TEST(SingleGraph, SitesAreMountedUnderLabels) {
  NamingGraph graph;
  FileSystem fs(graph);
  SingleGraphScheme scheme(fs);
  SiteId s1 = scheme.add_site("m1");
  ASSERT_TRUE(fs.create_file_at(scheme.site_tree(s1), "f", "x").is_ok());
  Context ctx = FileSystem::make_process_context(scheme.global_root(),
                                                 scheme.global_root());
  EXPECT_TRUE(fs.resolve_path(ctx, "/m1/f").ok());
  // '..' climbs from the site tree to the global root (mount reparents).
  EXPECT_EQ(fs.parent_of(scheme.site_tree(s1)).value(),
            scheme.global_root());
}

class NewcastleTest : public ::testing::Test {
 protected:
  NewcastleTest() : fs_(graph_), scheme_(fs_) {
    s1_ = scheme_.add_site("m1");
    s2_ = scheme_.add_site("m2");
    s3_ = scheme_.add_site("m3");
    populate_two_sites(fs_, scheme_, s1_, s2_);
    TreeSpec spec;
    spec.site_tag = "s3";
    populate_tree(fs_, scheme_.site_tree(s3_), spec, 42);
    scheme_.finalize();
  }
  NamingGraph graph_;
  FileSystem fs_;
  NewcastleScheme scheme_;
  SiteId s1_, s2_, s3_;
};

TEST_F(NewcastleTest, SameMachineProcessesCoherent) {
  // "Only processes that have the same binding for the root directory have
  // coherence for names starting with '/'".
  CoherenceAnalyzer analyzer(graph_);
  EntityId a = scheme_.make_site_context(s1_);
  EntityId b = scheme_.make_site_context(s1_);
  auto probes = absolutize(probes_from_dir(graph_, scheme_.site_tree(s1_)));
  EXPECT_DOUBLE_EQ(analyzer.degree(a, b, probes).strict.fraction(), 1.0);
}

TEST_F(NewcastleTest, CrossMachineIncoherent) {
  // "There is incoherence across machine boundaries."
  CoherenceAnalyzer analyzer(graph_);
  EntityId a = scheme_.make_site_context(s1_);
  EntityId b = scheme_.make_site_context(s2_);
  auto probes = absolutize(probes_from_dir(graph_, scheme_.site_tree(s1_)));
  DegreeReport report = analyzer.degree(a, b, probes);
  // No common reference at all for '/' names: nothing is coherent.
  EXPECT_DOUBLE_EQ(report.strict.fraction(), 0.0);
  // And the failure mode is a mix of silently-different and unresolved.
  EXPECT_GT(report.verdicts.get("different"), 0u);
  EXPECT_GT(report.verdicts.get("one-unresolved"), 0u);
}

TEST_F(NewcastleTest, DotDotAboveRootReachesOtherMachines) {
  ASSERT_TRUE(
      fs_.create_file_at(scheme_.site_tree(s2_), "special", "on m2").is_ok());
  Context on_m1 = FileSystem::make_process_context(scheme_.site_root(s1_),
                                                   scheme_.site_root(s1_));
  Resolution res = fs_.resolve_path(on_m1, "/../m2/special");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "on m2");
}

TEST_F(NewcastleTest, MapPathRestoresCommonReference) {
  // The §5.1 "simple rule to map names across machines".
  ASSERT_TRUE(
      fs_.create_file_at(scheme_.site_tree(s1_), "proj/data", "D").is_ok());
  auto mapped = scheme_.map_path(s1_, s2_, "/proj/data");
  ASSERT_TRUE(mapped.is_ok());
  EXPECT_EQ(mapped.value(), "/../m1/proj/data");
  Context on_m1 = FileSystem::make_process_context(scheme_.site_root(s1_),
                                                   scheme_.site_root(s1_));
  Context on_m2 = FileSystem::make_process_context(scheme_.site_root(s2_),
                                                   scheme_.site_root(s2_));
  Resolution direct = fs_.resolve_path(on_m1, "/proj/data");
  Resolution via_map = fs_.resolve_path(on_m2, mapped.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_map.ok());
  EXPECT_EQ(direct.entity, via_map.entity);
}

TEST_F(NewcastleTest, MapPathIdentityAndErrors) {
  EXPECT_EQ(scheme_.map_path(s1_, s1_, "/x").value(), "/x");
  EXPECT_EQ(scheme_.map_path(s1_, s2_, "/").value(), "/../m1");
  EXPECT_FALSE(scheme_.map_path(s1_, s2_, "relative").is_ok());
  NamingGraph g2;
  FileSystem f2(g2);
  NewcastleScheme unfinalized(f2);
  SiteId a = unfinalized.add_site("a");
  SiteId b = unfinalized.add_site("b");
  EXPECT_EQ(unfinalized.map_path(a, b, "/x").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(NewcastleTest, NoGlobalNamesDespiteSingleTree) {
  // "a shared naming tree does not imply that names are global".
  CoherenceAnalyzer analyzer(graph_);
  std::vector<EntityId> contexts = {scheme_.make_site_context(s1_),
                                    scheme_.make_site_context(s2_),
                                    scheme_.make_site_context(s3_)};
  auto probes = absolutize(probes_from_dir(graph_, scheme_.site_tree(s1_)));
  FractionCounter global = analyzer.global_fraction(
      contexts, probes, CoherenceMode::kStrict);
  EXPECT_DOUBLE_EQ(global.fraction(), 0.0);
}

class SharedGraphTest : public ::testing::Test {
 protected:
  SharedGraphTest() : fs_(graph_), scheme_(fs_) {
    s1_ = scheme_.add_site("c1");
    s2_ = scheme_.add_site("c2");
    populate_two_sites(fs_, scheme_, s1_, s2_);
    // Shared subtree content.
    NAMECOH_CHECK(
        fs_.create_file_at(scheme_.shared_tree(), "usr/shared.txt", "s")
            .is_ok(),
        "");
    NAMECOH_CHECK(
        fs_.create_file_at(scheme_.shared_tree(), "projects/p1/main.c", "m")
            .is_ok(),
        "");
    // Replicated commands.
    NAMECOH_CHECK(scheme_.replicate_everywhere("rbin/cc", "cc").is_ok(), "");
    scheme_.finalize();
  }
  NamingGraph graph_;
  FileSystem fs_;
  SharedGraphScheme scheme_;
  SiteId s1_, s2_;
};

TEST_F(SharedGraphTest, ViceNamesAreGlobal) {
  // §5.2: "Only files in the shared naming graph have global names: these
  // are names prefixed with /vice."
  CoherenceAnalyzer analyzer(graph_);
  EntityId c1 = scheme_.make_site_context(s1_);
  EntityId c2 = scheme_.make_site_context(s2_);
  auto shared_probes = probes_from_dir(graph_, scheme_.shared_tree());
  // Prefix each with /vice.
  std::vector<CompoundName> vice_probes;
  for (const auto& p : shared_probes) {
    vice_probes.push_back(
        CompoundName::path("/vice").append(p));
  }
  DegreeReport report = analyzer.degree(c1, c2, vice_probes);
  ASSERT_GT(report.strict.trials(), 0u);
  EXPECT_DOUBLE_EQ(report.strict.fraction(), 1.0);
}

TEST_F(SharedGraphTest, LocalNamesIncoherentAcrossClients) {
  CoherenceAnalyzer analyzer(graph_);
  EntityId c1 = scheme_.make_site_context(s1_);
  EntityId c2 = scheme_.make_site_context(s2_);
  // Probe only the sites' local trees (exclude the vice attachment).
  std::vector<CompoundName> local;
  for (const auto& p :
       absolutize(probes_from_dir(graph_, scheme_.site_tree(s1_)))) {
    if (!p.has_prefix(CompoundName::path("/vice")) &&
        !p.has_prefix(CompoundName::path("/rbin"))) {
      local.push_back(p);
    }
  }
  ASSERT_GT(local.size(), 5u);
  DegreeReport report = analyzer.degree(c1, c2, local);
  EXPECT_LT(report.strict.fraction(), 1.0);
  EXPECT_EQ(report.strict.successes(), 0u);
}

TEST_F(SharedGraphTest, ReplicatedCommandsWeaklyCoherent) {
  // §5.2: "There is also coherence for the names of replicated commands
  // and libraries" — weak coherence, to be precise.
  CoherenceAnalyzer analyzer(graph_);
  EntityId c1 = scheme_.make_site_context(s1_);
  EntityId c2 = scheme_.make_site_context(s2_);
  CompoundName cc = CompoundName::path("/rbin/cc");
  EXPECT_EQ(analyzer.probe(c1, c2, cc), ProbeVerdict::kWeakReplicas);
  EXPECT_FALSE(analyzer.coherent_for(c1, c2, cc, CoherenceMode::kStrict));
  EXPECT_TRUE(analyzer.coherent_for(c1, c2, cc, CoherenceMode::kWeak));
}

TEST_F(SharedGraphTest, DceCellsCoherentWithinCellOnly) {
  // §5.2 DCE: cells under "/.:" — incoherence for cell-relative names
  // across cells, coherence within a cell.
  NamingGraph graph;
  FileSystem fs(graph);
  SharedGraphConfig config;
  config.shared_name = Name("...");
  config.cell_name = Name(".:");
  SharedGraphScheme dce(fs, config);
  SiteId a1 = dce.add_site("orgA-1");
  SiteId a2 = dce.add_site("orgA-2");
  SiteId b1 = dce.add_site("orgB-1");
  ASSERT_TRUE(dce.assign_cell(a1, Name("orgA")).is_ok());
  ASSERT_TRUE(dce.assign_cell(a2, Name("orgA")).is_ok());
  ASSERT_TRUE(dce.assign_cell(b1, Name("orgB")).is_ok());
  // Cell content.
  ASSERT_TRUE(fs.create_file_at(dce.shared_tree(), "orgA/db", "A db").is_ok());
  ASSERT_TRUE(fs.create_file_at(dce.shared_tree(), "orgB/db", "B db").is_ok());

  CoherenceAnalyzer analyzer(graph);
  EntityId ca1 = dce.make_site_context(a1);
  EntityId ca2 = dce.make_site_context(a2);
  EntityId cb1 = dce.make_site_context(b1);
  // Cell-relative name: "/.:/db".
  CompoundName cell_db({Name("/"), Name(".:"), Name("db")});
  EXPECT_EQ(analyzer.probe(ca1, ca2, cell_db), ProbeVerdict::kSameEntity);
  EXPECT_EQ(analyzer.probe(ca1, cb1, cell_db), ProbeVerdict::kDifferent);
  // Fully qualified "/.../orgA/db" is global.
  CompoundName full({Name("/"), Name("..."), Name("orgA"), Name("db")});
  EXPECT_EQ(analyzer.probe(ca1, cb1, full), ProbeVerdict::kSameEntity);
}

TEST(DceCells, SingleCellPerMachineIsNotSufficient) {
  // §5.2: "An organization can have several cells, but a machine is
  // allowed to know of only one local cell. A single local context such as
  // the cell is not going to be sufficient; it is useful to be able to use
  // names relative to several local contexts."
  NamingGraph graph;
  FileSystem fs(graph);
  SharedGraphConfig config;
  config.shared_name = Name("...");
  config.cell_name = Name(".:");
  SharedGraphScheme dce(fs, config);
  SiteId site = dce.add_site("dev-box");
  ASSERT_TRUE(dce.assign_cell(site, Name("engineering")).is_ok());
  // The machine cannot get a second cell binding: the DCE limitation.
  EXPECT_EQ(dce.assign_cell(site, Name("sales")).code(),
            StatusCode::kAlreadyExists);
  dce.finalize();
  Context shared_ctx = FileSystem::make_process_context(dce.shared_tree(),
                                                        dce.shared_tree());
  ASSERT_TRUE(
      fs.create_file_at(dce.shared_tree(), "engineering/specs", "S").is_ok());
  ASSERT_TRUE(
      fs.create_file_at(dce.shared_tree(), "sales/forecast", "F").is_ok());

  // The paper's remedy: attach several local contexts per *process*
  // (division, department, project), which our process contexts support
  // directly — a per-process closure fix the machine-level cell cannot do.
  EntityId process_ctx = graph.add_context_object("multi-cell-process");
  graph.context(process_ctx) =
      FileSystem::make_process_context(dce.site_root(site),
                                       dce.site_root(site));
  EntityId eng = fs.resolve_path(shared_ctx, "/engineering").entity;
  EntityId sales = fs.resolve_path(shared_ctx, "/sales").entity;
  graph.context(process_ctx).bind(Name("eng:"), eng);
  graph.context(process_ctx).bind(Name("sales:"), sales);
  Resolution specs = resolve(graph, graph.context(process_ctx),
                             CompoundName({Name("eng:"), Name("specs")}));
  Resolution forecast =
      resolve(graph, graph.context(process_ctx),
              CompoundName({Name("sales:"), Name("forecast")}));
  ASSERT_TRUE(specs.ok());
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(graph.data(specs.entity), "S");
  EXPECT_EQ(graph.data(forecast.entity), "F");
}

TEST_F(SharedGraphTest, AssignCellRequiresConfiguration) {
  EXPECT_EQ(scheme_.assign_cell(s1_, Name("org")).code(),
            StatusCode::kFailedPrecondition);
}

class CrossLinkTest : public ::testing::Test {
 protected:
  CrossLinkTest() : fs_(graph_), scheme_(fs_) {
    org1_ = scheme_.add_site("org1");
    org2_ = scheme_.add_site("org2");
    NAMECOH_CHECK(
        fs_.create_file_at(scheme_.site_tree(org1_), "users/ann/f", "ann")
            .is_ok(), "");
    NAMECOH_CHECK(
        fs_.create_file_at(scheme_.site_tree(org2_), "users/bob/f", "bob")
            .is_ok(), "");
    scheme_.finalize();
  }
  NamingGraph graph_;
  FileSystem fs_;
  CrossLinkScheme scheme_;
  SiteId org1_, org2_;
};

TEST_F(CrossLinkTest, LinkGivesAccessWithoutGlobalNames) {
  ASSERT_TRUE(scheme_.add_cross_link(org1_, Name("org2"), org2_).is_ok());
  Context on1 = FileSystem::make_process_context(scheme_.site_root(org1_),
                                                 scheme_.site_root(org1_));
  // org1 can reach org2's user files via the link…
  Resolution res = fs_.resolve_path(on1, "/org2/users/bob/f");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "bob");
  // …but the *same name* "/users/bob/f" means different things: §5.3
  // "There are no global names between systems".
  CoherenceAnalyzer analyzer(graph_);
  EntityId c1 = scheme_.make_site_context(org1_);
  EntityId c2 = scheme_.make_site_context(org2_);
  EXPECT_NE(analyzer.probe(c1, c2, CompoundName::path("/users/bob/f")),
            ProbeVerdict::kSameEntity);
}

TEST_F(CrossLinkTest, PrefixMappingRestoresReference) {
  // §7: humans map /users/... to /org2/users/... across the boundary.
  ASSERT_TRUE(scheme_.add_cross_link(org1_, Name("org2"), org2_).is_ok());
  auto mapped = CrossLinkScheme::map_with_prefix(Name("org2"),
                                                 "/users/bob/f");
  ASSERT_TRUE(mapped.is_ok());
  EXPECT_EQ(mapped.value(), "/org2/users/bob/f");
  Context on1 = FileSystem::make_process_context(scheme_.site_root(org1_),
                                                 scheme_.site_root(org1_));
  Context on2 = FileSystem::make_process_context(scheme_.site_root(org2_),
                                                 scheme_.site_root(org2_));
  EXPECT_EQ(fs_.resolve_path(on1, mapped.value()).entity,
            fs_.resolve_path(on2, "/users/bob/f").entity);
  EXPECT_FALSE(
      CrossLinkScheme::map_with_prefix(Name("x"), "relative").is_ok());
}

TEST_F(CrossLinkTest, DeepCrossLink) {
  ASSERT_TRUE(scheme_.add_cross_link_to(org1_, Name("bobhome"), org2_,
                                        "users/bob").is_ok());
  Context on1 = FileSystem::make_process_context(scheme_.site_root(org1_),
                                                 scheme_.site_root(org1_));
  Resolution res = fs_.resolve_path(on1, "/bobhome/f");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(graph_.data(res.entity), "bob");
  // Linking a file works too.
  ASSERT_TRUE(scheme_.add_cross_link_to(org1_, Name("bobf"), org2_,
                                        "users/bob/f").is_ok());
  EXPECT_EQ(fs_.resolve_path(on1, "/bobf").entity, res.entity);
  // Bad remote path fails.
  EXPECT_FALSE(scheme_.add_cross_link_to(org1_, Name("nope"), org2_,
                                         "no/such/path").is_ok());
}

TEST(PerProcess, SameViewFullCoherenceAnywhere) {
  // §6 II: two processes (anywhere) with the same attachments have
  // coherence for all names through them.
  NamingGraph graph;
  FileSystem fs(graph);
  PerProcessScheme scheme(fs);
  SiteId s1 = scheme.add_site("m1");
  SiteId s2 = scheme.add_site("m2");
  TreeSpec spec;
  spec.site_tag = "s1";
  populate_tree(fs, scheme.site_tree(s1), spec, 7);
  spec.site_tag = "s2";
  populate_tree(fs, scheme.site_tree(s2), spec, 7);
  scheme.finalize();

  EntityId view_a = scheme.make_view_of_sites({s1, s2});
  EntityId view_b = scheme.make_view_of_sites({s1, s2});
  EntityId ctx_a = graph.add_context_object("pa");
  graph.context(ctx_a) = FileSystem::make_process_context(view_a, view_a);
  EntityId ctx_b = graph.add_context_object("pb");
  graph.context(ctx_b) = FileSystem::make_process_context(view_b, view_b);

  CoherenceAnalyzer analyzer(graph);
  auto probes = absolutize(probes_from_dir(graph, view_a));
  ASSERT_GT(probes.size(), 10u);
  EXPECT_DOUBLE_EQ(analyzer.degree(ctx_a, ctx_b, probes).strict.fraction(),
                   1.0);
}

TEST(PerProcess, DifferentViewsDiverge) {
  NamingGraph graph;
  FileSystem fs(graph);
  PerProcessScheme scheme(fs);
  SiteId s1 = scheme.add_site("m1");
  SiteId s2 = scheme.add_site("m2");
  ASSERT_TRUE(fs.create_file_at(scheme.site_tree(s1), "f", "1").is_ok());
  ASSERT_TRUE(fs.create_file_at(scheme.site_tree(s2), "f", "2").is_ok());
  scheme.finalize();
  // View a sees m1 under "work"; view b sees m2 under "work".
  EntityId va = scheme.make_view({{Name("work"), scheme.site_tree(s1)}});
  EntityId vb = scheme.make_view({{Name("work"), scheme.site_tree(s2)}});
  CoherenceAnalyzer analyzer(graph);
  EXPECT_EQ(analyzer.probe(va, vb, CompoundName::relative("work/f")),
            ProbeVerdict::kDifferent);
  // Default views expose each site under its own label.
  EXPECT_TRUE(resolve_from(graph, scheme.site_root(s1),
                           CompoundName::relative("m1/f"))
                  .ok());
}

TEST(SchemeBase, AddSiteAfterFinalizeThrows) {
  NamingGraph graph;
  FileSystem fs(graph);
  NewcastleScheme scheme(fs);
  scheme.add_site("m1");
  scheme.finalize();
  EXPECT_THROW(scheme.add_site("m2"), PreconditionError);
  EXPECT_EQ(scheme.site_count(), 1u);
}

TEST(SchemeBase, SchemeNames) {
  NamingGraph graph;
  FileSystem fs(graph);
  EXPECT_EQ(SingleGraphScheme(fs).scheme_name(), "single-graph (Locus/V)");
  EXPECT_EQ(NewcastleScheme(fs).scheme_name(), "newcastle-connection");
  EXPECT_EQ(SharedGraphScheme(fs).scheme_name(), "shared-graph (Andrew/DCE)");
  EXPECT_EQ(CrossLinkScheme(fs).scheme_name(), "cross-links (federated)");
  EXPECT_EQ(PerProcessScheme(fs).scheme_name(),
            "per-process views (Plan 9/Port)");
}

TEST(SchemeBase, RecordMetricsPublishesShape) {
  NamingGraph graph;
  FileSystem fs(graph);
  SingleGraphScheme scheme(fs);
  scheme.add_site("m1");
  scheme.add_site("m2");
  scheme.finalize();
  MetricsRegistry metrics;
  scheme.record_metrics(metrics);
  EXPECT_EQ(metrics.gauge_value("scheme.single-graph (Locus/V).sites"), 2.0);
  EXPECT_EQ(metrics.gauge_value("scheme.single-graph (Locus/V).entities"),
            static_cast<double>(graph.entity_count()));
}

}  // namespace
}  // namespace namecoh
