// Tests for closure mechanisms (§3): ClosureTable, the resolution rules
// R(activity), R(receiver), R(sender), R(object) and per-source composites.
#include <gtest/gtest.h>

#include "core/closure.hpp"

namespace namecoh {
namespace {

// Fixture with two activities that have different contexts binding the same
// name "n" to different entities — the canonical incoherence setup — plus an
// object with its own context.
class ClosureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alice_ = g_.add_activity("alice");
    bob_ = g_.add_activity("bob");
    ctx_alice_ = g_.add_context_object("ctx-alice");
    ctx_bob_ = g_.add_context_object("ctx-bob");
    ctx_obj_ = g_.add_context_object("ctx-doc");
    doc_ = g_.add_data_object("doc");
    ea_ = g_.add_data_object("alice's n");
    eb_ = g_.add_data_object("bob's n");
    eo_ = g_.add_data_object("doc's n");
    ASSERT_TRUE(g_.bind(ctx_alice_, Name("n"), ea_).is_ok());
    ASSERT_TRUE(g_.bind(ctx_bob_, Name("n"), eb_).is_ok());
    ASSERT_TRUE(g_.bind(ctx_obj_, Name("n"), eo_).is_ok());
    table_.set_activity_context(alice_, ctx_alice_);
    table_.set_activity_context(bob_, ctx_bob_);
    table_.set_object_context(doc_, ctx_obj_);
  }

  NamingGraph g_;
  ClosureTable table_;
  EntityId alice_, bob_, ctx_alice_, ctx_bob_, ctx_obj_, doc_;
  EntityId ea_, eb_, eo_;
};

TEST_F(ClosureTest, TableLookups) {
  EXPECT_TRUE(table_.has_activity_context(alice_));
  EXPECT_FALSE(table_.has_activity_context(doc_));
  EXPECT_EQ(table_.activity_context(alice_).value(), ctx_alice_);
  EXPECT_EQ(table_.object_context(doc_).value(), ctx_obj_);
  EXPECT_EQ(table_.activity_context(EntityId(77)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(table_.object_context(EntityId(77)).code(),
            StatusCode::kNotFound);
}

TEST_F(ClosureTest, TableClear) {
  table_.clear();
  EXPECT_FALSE(table_.has_activity_context(alice_));
  EXPECT_FALSE(table_.has_object_context(doc_));
}

TEST_F(ClosureTest, ByActivitySelectsResolverContext) {
  ByActivityRule rule;
  auto ctx = rule.select(table_, Circumstance::internal(alice_));
  ASSERT_TRUE(ctx.is_ok());
  EXPECT_EQ(ctx.value(), ctx_alice_);
  // Even for a message circumstance, R(activity) uses the resolver.
  auto ctx2 = rule.select(table_, Circumstance::from_message(bob_, alice_));
  EXPECT_EQ(ctx2.value(), ctx_bob_);
}

TEST_F(ClosureTest, ByReceiverEqualsByActivitySelection) {
  ByReceiverRule receiver;
  ByActivityRule activity;
  Circumstance c = Circumstance::from_message(bob_, alice_);
  EXPECT_EQ(receiver.select(table_, c).value(),
            activity.select(table_, c).value());
  EXPECT_EQ(receiver.kind(), RuleKind::kByReceiver);
}

TEST_F(ClosureTest, BySenderUsesSenderContextForMessages) {
  BySenderRule rule;
  Circumstance c = Circumstance::from_message(bob_, alice_);
  EXPECT_EQ(rule.select(table_, c).value(), ctx_alice_);
}

TEST_F(ClosureTest, BySenderFallsBackForNonMessageSources) {
  BySenderRule rule;
  EXPECT_EQ(rule.select(table_, Circumstance::internal(bob_)).value(),
            ctx_bob_);
  EXPECT_EQ(
      rule.select(table_, Circumstance::from_object(bob_, doc_)).value(),
      ctx_bob_);
}

TEST_F(ClosureTest, ByObjectUsesObjectContextForEmbeddedNames) {
  ByObjectRule rule;
  Circumstance c = Circumstance::from_object(alice_, doc_);
  EXPECT_EQ(rule.select(table_, c).value(), ctx_obj_);
  // Internal names fall back to the resolver's context.
  EXPECT_EQ(rule.select(table_, Circumstance::internal(alice_)).value(),
            ctx_alice_);
}

TEST_F(ClosureTest, ResolveWithRuleEndToEnd) {
  // The same name "n" resolved by bob under the three rules gives three
  // different entities — exactly Fig. 2's point.
  CompoundName n = CompoundName::relative("n");
  Circumstance from_alice = Circumstance::from_message(bob_, alice_);
  Circumstance from_doc = Circumstance::from_object(bob_, doc_);

  Resolution r1 = resolve_with_rule(g_, table_, ByReceiverRule{},
                                    from_alice, n);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.entity, eb_);  // bob's own meaning

  Resolution r2 = resolve_with_rule(g_, table_, BySenderRule{},
                                    from_alice, n);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.entity, ea_);  // alice's meaning — coherent with sender

  Resolution r3 = resolve_with_rule(g_, table_, ByObjectRule{}, from_doc, n);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.entity, eo_);  // the document's meaning
}

TEST_F(ClosureTest, ResolveWithRuleReportsMissingAssignment) {
  EntityId stranger = g_.add_activity("stranger");
  Resolution res = resolve_with_rule(g_, table_, ByActivityRule{},
                                     Circumstance::internal(stranger),
                                     CompoundName::relative("n"));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status.code(), StatusCode::kNotFound);
}

TEST_F(ClosureTest, PerSourceRuleDispatchesBySource) {
  auto rule = make_coherent_per_source_rule();
  CompoundName n = CompoundName::relative("n");

  // internal → R(a)
  Resolution internal = resolve_with_rule(
      g_, table_, *rule, Circumstance::internal(bob_), n);
  EXPECT_EQ(internal.entity, eb_);
  // message → R(sender)
  Resolution message = resolve_with_rule(
      g_, table_, *rule, Circumstance::from_message(bob_, alice_), n);
  EXPECT_EQ(message.entity, ea_);
  // embedded → R(object)
  Resolution embedded = resolve_with_rule(
      g_, table_, *rule, Circumstance::from_object(bob_, doc_), n);
  EXPECT_EQ(embedded.entity, eo_);
  EXPECT_EQ(rule->kind(), RuleKind::kPerSource);
}

TEST_F(ClosureTest, PerSourceRequiresAllSubRules) {
  EXPECT_THROW(PerSourceRule(nullptr, make_rule(RuleKind::kBySender),
                             make_rule(RuleKind::kByObject)),
               PreconditionError);
}

TEST(ClosureFactory, BasicRulesAreSingletons) {
  EXPECT_EQ(make_rule(RuleKind::kByActivity),
            make_rule(RuleKind::kByActivity));
  EXPECT_EQ(make_rule(RuleKind::kByActivity)->kind(), RuleKind::kByActivity);
  EXPECT_EQ(make_rule(RuleKind::kBySender)->kind(), RuleKind::kBySender);
  EXPECT_EQ(make_rule(RuleKind::kByReceiver)->kind(), RuleKind::kByReceiver);
  EXPECT_EQ(make_rule(RuleKind::kByObject)->kind(), RuleKind::kByObject);
  EXPECT_THROW(make_rule(RuleKind::kPerSource), PreconditionError);
}

TEST(ClosureNames, Stable) {
  EXPECT_EQ(rule_kind_name(RuleKind::kByActivity), "R(activity)");
  EXPECT_EQ(rule_kind_name(RuleKind::kBySender), "R(sender)");
  EXPECT_EQ(rule_kind_name(RuleKind::kByReceiver), "R(receiver)");
  EXPECT_EQ(rule_kind_name(RuleKind::kByObject), "R(object)");
  EXPECT_EQ(name_source_name(NameSource::kInternal), "internal");
  EXPECT_EQ(name_source_name(NameSource::kFromActivity), "from-activity");
  EXPECT_EQ(name_source_name(NameSource::kFromObject), "from-object");
}

TEST(ClosureTable, SharedContextAcrossActivities) {
  // The paper: one context may be shared by all activities (global ctx).
  NamingGraph g;
  EntityId a1 = g.add_activity("a1");
  EntityId a2 = g.add_activity("a2");
  EntityId shared = g.add_context_object("shared");
  EntityId e = g.add_data_object("e");
  ASSERT_TRUE(g.bind(shared, Name("n"), e).is_ok());
  ClosureTable table;
  table.set_activity_context(a1, shared);
  table.set_activity_context(a2, shared);
  ByActivityRule rule;
  CompoundName n = CompoundName::relative("n");
  Resolution r1 = resolve_with_rule(g, table, rule,
                                    Circumstance::internal(a1), n);
  Resolution r2 = resolve_with_rule(g, table, rule,
                                    Circumstance::internal(a2), n);
  EXPECT_TRUE(r1.same_entity(r2));  // trivially coherent: shared context
}

}  // namespace
}  // namespace namecoh
