// Scale smoke tests: the library must stay linear-ish on graphs far larger
// than the experiment fixtures. No wall-clock assertions (flaky); instead
// the tests bound *work counters* that would explode under accidental
// quadratic behaviour, and simply require completion. Includes a fuzz test
// of the wire codec: arbitrary bytes must never crash the decoder.
#include <gtest/gtest.h>

#include "namecoh.hpp"

namespace namecoh {
namespace {

TEST(Scale, LargeTreeResolutionAndEnumeration) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("big");
  TreeSpec spec;
  spec.depth = 5;
  spec.dirs_per_dir = 4;
  spec.files_per_dir = 2;
  spec.common_fraction = 1.0;
  TreeStats stats = populate_tree(fs, root, spec, 1);
  // 4 + 16 + 64 + 256 + 1024 = 1364 directories.
  EXPECT_EQ(stats.directories, 1364u);
  EXPECT_EQ(stats.files, 2u * 1365u);

  EnumerateOptions options;
  options.max_results = 100000;
  auto names = enumerate_names(graph, root, options);
  EXPECT_EQ(names.size(), stats.directories + stats.files);

  // Deep resolution still costs exactly its length.
  Context ctx = FileSystem::make_process_context(root, root);
  Resolution res = fs.resolve_path(ctx, "/bin/d1_0/d2_0/d3_0/d4_0/README");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.steps, 7u);
}

TEST(Scale, PairwiseCoherenceOverThousandsOfProbes) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId r1 = fs.make_root("a");
  EntityId r2 = fs.make_root("b");
  TreeSpec spec;
  spec.depth = 4;
  spec.dirs_per_dir = 3;
  spec.files_per_dir = 3;
  spec.common_fraction = 0.7;
  spec.site_tag = "a";
  populate_tree(fs, r1, spec, 2);
  spec.site_tag = "b";
  populate_tree(fs, r2, spec, 2);
  // A shared subtree so the probe set has a genuinely coherent portion.
  EntityId shared = fs.make_root("shared");
  TreeSpec shared_spec;
  shared_spec.depth = 3;
  shared_spec.dirs_per_dir = 3;
  shared_spec.files_per_dir = 3;
  shared_spec.common_fraction = 1.0;
  populate_tree(fs, shared, shared_spec, 9);
  ASSERT_TRUE(fs.attach(r1, Name("shared"), shared).is_ok());
  ASSERT_TRUE(fs.attach(r2, Name("shared"), shared).is_ok());
  EntityId c1 = graph.add_context_object("c1");
  graph.context(c1) = FileSystem::make_process_context(r1, r1);
  EntityId c2 = graph.add_context_object("c2");
  graph.context(c2) = FileSystem::make_process_context(r2, r2);
  CoherenceAnalyzer analyzer(graph);
  auto probes = absolutize(probes_from_dir(graph, r1, 8, 100000));
  ASSERT_GT(probes.size(), 300u);
  DegreeReport report = analyzer.degree(c1, c2, probes);
  EXPECT_EQ(report.strict.trials(), probes.size());
  // Mixed outcome sanity: some coherent (common positions), some not.
  EXPECT_GT(report.strict.successes(), 0u);
  EXPECT_LT(report.strict.successes(), report.strict.trials());
}

TEST(Scale, ManyProcessesManyMachines) {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  Transport transport(sim, net);
  ProcessManager pm(graph, fs, net, transport);
  NetworkId n = net.add_network("n");
  EntityId root = fs.make_root("shared-root");
  NAMECOH_CHECK(fs.create_file_at(root, "f", "x").is_ok(), "");
  std::vector<ProcessId> processes;
  for (int m = 0; m < 20; ++m) {
    MachineId machine = net.add_machine(n, "m" + std::to_string(m));
    for (int p = 0; p < 10; ++p) {
      processes.push_back(pm.spawn(machine, "p", root, root));
    }
  }
  EXPECT_EQ(pm.process_count(), 200u);
  // All-pairs would be 20k sends; a ring suffices to exercise the stack.
  for (std::size_t i = 0; i < processes.size(); ++i) {
    ASSERT_TRUE(pm.send_name_to(processes[i],
                                processes[(i + 1) % processes.size()],
                                "/f").is_ok());
  }
  pm.settle();
  EXPECT_EQ(pm.received_names().size(), processes.size());
  // Every received name is coherent (shared root).
  for (const ReceivedName& rn : pm.received_names()) {
    Resolution got = pm.resolve_received(rn, ByReceiverRule{});
    ASSERT_TRUE(got.ok());
  }
}

TEST(Scale, SimulatorHandlesManyEvents) {
  Simulator sim;
  std::uint64_t counter = 0;
  for (int i = 0; i < 50000; ++i) {
    sim.schedule_at(static_cast<SimTime>(i % 997), [&counter] { ++counter; });
  }
  EXPECT_EQ(sim.run(), 50000u);
  EXPECT_EQ(counter, 50000u);
}

TEST(Fuzz, PayloadDecodeNeverCrashes) {
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    std::size_t len = rng.next_below(64);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    auto decoded = Payload::decode(bytes);  // must not crash or hang
    if (decoded.is_ok()) {
      // If it decodes, it must re-encode to a decodable payload.
      auto round = Payload::decode(decoded.value().encode());
      EXPECT_TRUE(round.is_ok());
      EXPECT_EQ(round.value(), decoded.value());
    }
  }
}

TEST(Fuzz, SnapshotImportNeverCrashes) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("r");
  Rng rng(4052);
  const char alphabet[] = "DFENR\t0123456789abcdef-\nv ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = "namecoh-snapshot v1 0\n";
    std::size_t len = rng.next_below(120);
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[rng.next_below(sizeof(alphabet) - 1)];
    }
    auto result = import_snapshot(fs, root, Name("t" + std::to_string(trial)),
                                  text);  // error or success, never crash
    (void)result;
  }
  // The tree must still be structurally sound afterwards.
  EXPECT_TRUE(fsck(graph, root).clean());
}

TEST(Fuzz, PathParserNeverCrashes) {
  Rng rng(31337);
  const char alphabet[] = "abc/.._-0 \t";
  for (int trial = 0; trial < 5000; ++trial) {
    std::string path;
    std::size_t len = rng.next_below(24);
    for (std::size_t i = 0; i < len; ++i) {
      path += alphabet[rng.next_below(sizeof(alphabet) - 1)];
    }
    auto parsed = CompoundName::parse_path(path);
    if (parsed.is_ok()) {
      // Round-trip stability for anything accepted.
      EXPECT_EQ(CompoundName::path(parsed.value().to_path()),
                parsed.value());
    }
    (void)CompoundName::parse_relative(path);
  }
}

}  // namespace
}  // namespace namecoh
