// Literal transcriptions of the paper's figures and in-text micro-claims,
// as directly as the text states them. These tests are deliberately
// verbose and example-based: each is a sentence from the paper made
// executable.
#include <gtest/gtest.h>

#include "embed/embedded.hpp"
#include "fs/file_system.hpp"
#include "net/transport.hpp"

namespace namecoh {
namespace {

TEST(PaperFigures, Figure6EmbeddedNameDenotesViaAncestorBinding) {
  // Fig. 6: "the name a/p is embedded in node n within the scope of a
  // binding at a node n'. The embedded name denotes node n'', which is
  // determined by resolving a/p relative to node n'."
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("tree-root");
  // n' is an interior node that binds "a".
  EntityId n_prime = fs.mkdir(root, Name("n-prime")).value();
  EntityId a = fs.mkdir(n_prime, Name("a")).value();
  EntityId n_dprime = fs.create_file(a, Name("p"), "n''").value();
  // n is a file deeper in the subtree, containing the embedded name a/p.
  EntityId mid = fs.mkdir(n_prime, Name("mid")).value();
  EntityId deep = fs.mkdir(mid, Name("deep")).value();
  EntityId n = fs.create_file(deep, Name("n"), "node n").value();
  graph.add_embedded_name(n, CompoundName::relative("a/p"));

  EmbeddedNameResolver resolver(graph);
  Resolution res =
      resolver.resolve_algol(deep, graph.embedded_names(n)[0]);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, n_dprime);
  // And the scope found is n' exactly.
  EXPECT_EQ(resolver.find_scope(deep, CompoundName::relative("a/p")).value(),
            n_prime);
}

TEST(PaperFigures, Sec51WorkingDirectoryRestrictsCoherence) {
  // §5.1 Unix: "R(p)(/) is the root of the tree for all processes p;
  // consequently there is coherence for the set of compound names starting
  // with '/'. The flexibility provided by the notion of a working
  // directory is useful and the restriction on coherence is acceptable."
  //
  // Concretely: same root, different cwd — absolute names coherent,
  // relative names not.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("unix-root");
  ASSERT_TRUE(fs.create_file_at(root, "home/ann/data", "ann's").is_ok());
  ASSERT_TRUE(fs.create_file_at(root, "home/bob/data", "bob's").is_ok());
  Context ctx = FileSystem::make_process_context(root, root);
  EntityId ann_home = fs.resolve_path(ctx, "/home/ann").entity;
  EntityId bob_home = fs.resolve_path(ctx, "/home/bob").entity;

  EntityId p1 = graph.add_context_object("p1");
  graph.context(p1) = FileSystem::make_process_context(root, ann_home);
  EntityId p2 = graph.add_context_object("p2");
  graph.context(p2) = FileSystem::make_process_context(root, bob_home);

  // Absolute: coherent.
  Resolution a1 = resolve_from(graph, p1, CompoundName::path("/home/ann/data"));
  Resolution a2 = resolve_from(graph, p2, CompoundName::path("/home/ann/data"));
  EXPECT_TRUE(a1.same_entity(a2));
  // Relative "data": each process gets its own — the accepted restriction.
  Resolution r1 = resolve_from(graph, p1, CompoundName::path("data"));
  Resolution r2 = resolve_from(graph, p2, CompoundName::path("data"));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1.same_entity(r2));
  EXPECT_EQ(graph.data(r1.entity), "ann's");
  EXPECT_EQ(graph.data(r2.entity), "bob's");
}

TEST(PaperFigures, Sec3SelfPidZeroZeroZero) {
  // §6 Ex. 1: "The pid (0,0,0) can be used by any process to refer to
  // itself" — for every process, at every location.
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);
  NetworkId n1 = net.add_network("n1");
  NetworkId n2 = net.add_network("n2");
  MachineId m1 = net.add_machine(n1, "m1");
  MachineId m2 = net.add_machine(n2, "m2");
  for (EndpointId p : {net.add_endpoint(m1, "a"), net.add_endpoint(m1, "b"),
                       net.add_endpoint(m2, "c")}) {
    EXPECT_EQ(tp.resolve_pid(p, Pid::self()).value(), p);
  }
}

TEST(PaperFigures, Sec2ContextObjectStateIsAContext) {
  // §2: "An object whose state is a context is called a context object. An
  // example of a context object is a Unix file directory." And resolution
  // "depends on the state of the context objects along the resolution
  // path" — mutate a directory on the path and the same name changes its
  // meaning.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("r");
  EntityId d = fs.mkdir(root, Name("d")).value();
  EntityId f1 = fs.create_file(d, Name("f"), "one").value();
  CompoundName name = CompoundName::relative("d/f");
  EXPECT_EQ(resolve_from(graph, root, name).entity, f1);
  // Mutate σ(d): rebind f.
  ASSERT_TRUE(fs.unlink(d, Name("f")).is_ok());
  EntityId f2 = fs.create_file(d, Name("f"), "two").value();
  EXPECT_EQ(resolve_from(graph, root, name).entity, f2);
  EXPECT_NE(f1, f2);
}

TEST(PaperFigures, Sec4CallByNameVsCallByText) {
  // §4: "call-by-name is preferable to call-by-text so that the parameter
  // has the same meaning for the caller and callee." Modelled: caller
  // resolves once and passes the entity (call-by-name ≈ capability) vs
  // passes the text and the callee resolves in its own context.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId caller_root = fs.make_root("caller");
  EntityId callee_root = fs.make_root("callee");
  EntityId intended =
      fs.create_file_at(caller_root, "cfg/settings", "caller's").value();
  ASSERT_TRUE(
      fs.create_file_at(callee_root, "cfg/settings", "callee's").is_ok());
  Context callee_ctx =
      FileSystem::make_process_context(callee_root, callee_root);
  // Call-by-text: the callee re-resolves the text — wrong entity.
  Resolution by_text = fs.resolve_path(callee_ctx, "/cfg/settings");
  EXPECT_NE(by_text.entity, intended);
  // Call-by-name: the binding travels, not the text. (In our system this
  // is what passing the resolved EntityId — or an R(sender)-remapped name
  // — achieves.)
  EXPECT_EQ(graph.data(intended), "caller's");
}

TEST(PaperFigures, Sec5ReplicatedObjectStateEquality) {
  // §5: replicas satisfy σ(o1) = … = σ(og) "for every legal state" — our
  // replicate_file keeps contents equal at creation; weak coherence is the
  // license to treat them as interchangeable.
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId r1 = fs.make_root("m1");
  EntityId r2 = fs.make_root("m2");
  EntityId original = fs.create_file(r1, Name("cc"), "v7").value();
  EntityId replica = fs.replicate_file(original, r2, Name("cc")).value();
  EXPECT_EQ(graph.data(original), graph.data(replica));
  EXPECT_TRUE(graph.weakly_equal(original, replica));
  EXPECT_NE(original, replica);
}

}  // namespace
}  // namespace namecoh
