// Tests for union directories (Plan 9-style merged views) and fsck.
#include <gtest/gtest.h>

#include "coherence/coherence.hpp"
#include "fs/fsck.hpp"
#include "fs/union_dir.hpp"

namespace namecoh {
namespace {

class UnionTest : public ::testing::Test {
 protected:
  UnionTest() : fs_(graph_), unions_(fs_) {
    local_ = fs_.make_root("localbin");
    system_ = fs_.make_root("sysbin");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file(local_, Name("cc"), "local cc").is_ok());
    ASSERT_TRUE(fs_.create_file(local_, Name("mytool"), "mine").is_ok());
    ASSERT_TRUE(fs_.create_file(system_, Name("cc"), "system cc").is_ok());
    ASSERT_TRUE(fs_.create_file(system_, Name("ls"), "system ls").is_ok());
  }

  NamingGraph graph_;
  FileSystem fs_;
  UnionViews unions_;
  EntityId local_, system_;
};

TEST_F(UnionTest, MergeWithPrecedence) {
  auto view = unions_.create("bin", {local_, system_});
  ASSERT_TRUE(view.is_ok());
  EXPECT_TRUE(unions_.is_union(view.value()));
  // Earlier member shadows: "cc" is the local one.
  Resolution cc = resolve_from(graph_, view.value(),
                               CompoundName::relative("cc"));
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(graph_.data(cc.entity), "local cc");
  // Names unique to either member are visible.
  EXPECT_TRUE(resolve_from(graph_, view.value(),
                           CompoundName::relative("mytool")).ok());
  EXPECT_TRUE(resolve_from(graph_, view.value(),
                           CompoundName::relative("ls")).ok());
}

TEST_F(UnionTest, PrecedenceOrderMatters) {
  auto view = unions_.create("bin", {system_, local_});
  ASSERT_TRUE(view.is_ok());
  Resolution cc = resolve_from(graph_, view.value(),
                               CompoundName::relative("cc"));
  EXPECT_EQ(graph_.data(cc.entity), "system cc");
}

TEST_F(UnionTest, StaleUntilRefresh) {
  auto view = unions_.create("bin", {local_, system_});
  ASSERT_TRUE(view.is_ok());
  ASSERT_TRUE(fs_.create_file(system_, Name("newtool"), "new").is_ok());
  // Materialized view doesn't see it yet …
  EXPECT_FALSE(resolve_from(graph_, view.value(),
                            CompoundName::relative("newtool")).ok());
  // … until refreshed.
  ASSERT_TRUE(unions_.refresh(view.value()).is_ok());
  EXPECT_TRUE(resolve_from(graph_, view.value(),
                           CompoundName::relative("newtool")).ok());
}

TEST_F(UnionTest, RefreshAllAndSetMembers) {
  auto v1 = unions_.create("v1", {local_});
  auto v2 = unions_.create("v2", {system_});
  ASSERT_TRUE(v1.is_ok());
  ASSERT_TRUE(v2.is_ok());
  ASSERT_TRUE(fs_.create_file(local_, Name("late"), "x").is_ok());
  ASSERT_TRUE(unions_.refresh_all().is_ok());
  EXPECT_TRUE(resolve_from(graph_, v1.value(),
                           CompoundName::relative("late")).ok());
  // Membership change swaps the view's contents.
  ASSERT_TRUE(unions_.set_members(v1.value(), {system_}).is_ok());
  EXPECT_FALSE(resolve_from(graph_, v1.value(),
                            CompoundName::relative("mytool")).ok());
  EXPECT_TRUE(resolve_from(graph_, v1.value(),
                           CompoundName::relative("ls")).ok());
  EXPECT_EQ(unions_.members_of(v1.value()).value(),
            std::vector<EntityId>{system_});
}

TEST_F(UnionTest, Validation) {
  EntityId file = graph_.add_data_object("f");
  EXPECT_FALSE(unions_.create("bad", {file}).is_ok());
  EXPECT_FALSE(unions_.refresh(local_).is_ok());       // not a union
  EXPECT_FALSE(unions_.members_of(local_).is_ok());
  EXPECT_FALSE(unions_.set_members(local_, {system_}).is_ok());
}

TEST_F(UnionTest, IdenticalUnionsAreCoherent) {
  // Two processes anywhere, same member list ⇒ coherent view (§6 II).
  auto va = unions_.create("bin-a", {local_, system_});
  auto vb = unions_.create("bin-b", {local_, system_});
  ASSERT_TRUE(va.is_ok());
  ASSERT_TRUE(vb.is_ok());
  CoherenceAnalyzer analyzer(graph_);
  auto probes = probes_from_dir(graph_, va.value());
  ASSERT_FALSE(probes.empty());
  DegreeReport report = analyzer.degree(va.value(), vb.value(), probes);
  EXPECT_DOUBLE_EQ(report.strict.fraction(), 1.0);
}

TEST(Fsck, CleanTreeReports) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("r");
  ASSERT_TRUE(fs.create_file_at(root, "a/b/c.txt", "x").is_ok());
  ASSERT_TRUE(fs.create_file_at(root, "a/d.txt", "y").is_ok());
  FsckReport report = fsck(graph, root);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.directories, 3u);  // r, a, a/b
  EXPECT_EQ(report.files, 2u);
  EXPECT_GT(report.bindings, 4u);
}

TEST(Fsck, DetectsBrokenDotBindings) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("r");
  auto dir = fs.mkdir(root, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  // Sabotage: "." pointing elsewhere, missing "..".
  graph.context(dir.value()).bind(Name("."), root);
  ASSERT_TRUE(graph.unbind(dir.value(), Name("..")).is_ok());
  FsckReport report = fsck(graph, root);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.issues.size(), 2u);
}

TEST(Fsck, DetectsParentBindingToFile) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("r");
  auto dir = fs.mkdir(root, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  EntityId file = graph.add_data_object("f");
  graph.context(dir.value()).bind(Name(".."), file);
  FsckReport report = fsck(graph, root);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].find("non-directory"), std::string::npos);
}

TEST(Fsck, NonDirectoryRoot) {
  NamingGraph graph;
  EntityId file = graph.add_data_object("f");
  FsckReport report = fsck(graph, file);
  EXPECT_FALSE(report.clean());
}

TEST(Fsck, HandlesCyclesAndUnions) {
  NamingGraph graph;
  FileSystem fs(graph);
  UnionViews unions(fs);
  EntityId root = fs.make_root("r");
  auto a = fs.mkdir(root, Name("a"));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(fs.link(a.value(), Name("up"), root).is_ok());
  auto view = unions.create("view", {root, a.value()});
  ASSERT_TRUE(view.is_ok());
  ASSERT_TRUE(fs.attach(root, Name("merged"), view.value()).is_ok());
  FsckReport report = fsck(graph, root);
  EXPECT_TRUE(report.clean())
      << (report.issues.empty() ? std::string() : report.issues.front());
}

}  // namespace
}  // namespace namecoh
