// Tests for the partially-qualified pid algebra (§6 Example 1):
// well-formedness, qualify, relativize, rebase, and their algebraic laws.
#include <gtest/gtest.h>

#include <sstream>

#include "net/address.hpp"

namespace namecoh {
namespace {

TEST(Pid, WellFormedForms) {
  // The four legal forms from the paper.
  EXPECT_TRUE((Pid{0, 0, 0}).is_well_formed());  // self
  EXPECT_TRUE((Pid{0, 0, 7}).is_well_formed());  // (0,0,l)
  EXPECT_TRUE((Pid{0, 3, 7}).is_well_formed());  // (0,m,l)
  EXPECT_TRUE((Pid{2, 3, 7}).is_well_formed());  // (n,m,l)
}

TEST(Pid, MalformedForms) {
  EXPECT_FALSE((Pid{2, 0, 7}).is_well_formed());  // network w/o machine
  EXPECT_FALSE((Pid{2, 3, 0}).is_well_formed());  // machine w/o local
  EXPECT_FALSE((Pid{0, 3, 0}).is_well_formed());
  EXPECT_FALSE((Pid{2, 0, 0}).is_well_formed());
}

TEST(Pid, QualificationLevel) {
  EXPECT_EQ(Pid::self().qualification_level(), 0);
  EXPECT_EQ((Pid{0, 0, 7}).qualification_level(), 1);
  EXPECT_EQ((Pid{0, 3, 7}).qualification_level(), 2);
  EXPECT_EQ((Pid{2, 3, 7}).qualification_level(), 3);
}

TEST(Pid, SelfAndFullyQualified) {
  EXPECT_TRUE(Pid::self().is_self());
  EXPECT_FALSE(Pid::self().is_fully_qualified());
  Location loc{1, 2, 3};
  Pid full = Pid::fully_qualified(loc);
  EXPECT_TRUE(full.is_fully_qualified());
  EXPECT_EQ(full, (Pid{1, 2, 3}));
}

TEST(Location, Validity) {
  EXPECT_TRUE((Location{1, 1, 1}).is_valid());
  EXPECT_FALSE((Location{0, 1, 1}).is_valid());
  EXPECT_FALSE((Location{1, 0, 1}).is_valid());
  EXPECT_FALSE((Location{1, 1, 0}).is_valid());
}

TEST(Location, MachineAndNetworkRelations) {
  Location a{1, 2, 3}, b{1, 2, 9}, c{1, 5, 3}, d{4, 2, 3};
  EXPECT_TRUE(a.same_machine(b));
  EXPECT_FALSE(a.same_machine(c));
  EXPECT_TRUE(a.same_network(c));
  EXPECT_FALSE(a.same_network(d));
}

TEST(Qualify, FillsUnqualifiedFieldsFromReference) {
  Location ref{1, 2, 3};
  EXPECT_EQ(qualify(Pid::self(), ref).value(), ref);  // (0,0,0) = myself
  EXPECT_EQ(qualify(Pid{0, 0, 9}, ref).value(), (Location{1, 2, 9}));
  EXPECT_EQ(qualify(Pid{0, 7, 9}, ref).value(), (Location{1, 7, 9}));
  EXPECT_EQ(qualify(Pid{5, 7, 9}, ref).value(), (Location{5, 7, 9}));
}

TEST(Qualify, RejectsMalformedPidAndBadReference) {
  EXPECT_EQ(qualify(Pid{2, 0, 7}, Location{1, 2, 3}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(qualify(Pid::self(), Location{0, 0, 0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(Relativize, MinimalQualification) {
  Location ref{1, 2, 3};
  // Same machine: only the local part is needed.
  EXPECT_EQ(relativize(Location{1, 2, 9}, ref), (Pid{0, 0, 9}));
  // Same network, different machine.
  EXPECT_EQ(relativize(Location{1, 7, 9}, ref), (Pid{0, 7, 9}));
  // Different network: fully qualified.
  EXPECT_EQ(relativize(Location{5, 7, 9}, ref), (Pid{5, 7, 9}));
}

TEST(Relativize, SelfHandling) {
  Location ref{1, 2, 3};
  EXPECT_EQ(relativize(ref, ref, /*allow_self=*/true), Pid::self());
  // Without allow_self, a process's own location relativizes to (0,0,l).
  EXPECT_EQ(relativize(ref, ref, /*allow_self=*/false), (Pid{0, 0, 3}));
}

TEST(Relativize, InvalidLocationsThrow) {
  EXPECT_THROW(relativize(Location{0, 0, 0}, Location{1, 1, 1}),
               PreconditionError);
}

// The fundamental round-trip law: qualify(relativize(t, r), r) == t.
class PidRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PidRoundTrip, QualifyInvertsRelativize) {
  int s = GetParam();
  // Enumerate a grid of (target, reference) pairs from the seed.
  Location targets[] = {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {2, 1, 1},
                        {2, 2, 2}, {3, 1, 5}, {1, 3, 5}};
  Location refs[] = {{1, 1, 1}, {1, 2, 3}, {2, 1, 1}, {3, 3, 3}};
  Location target = targets[s % 7];
  Location ref = refs[(s / 7) % 4];
  Pid pid = relativize(target, ref);
  EXPECT_TRUE(pid.is_well_formed());
  auto back = qualify(pid, ref);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), target);
}

INSTANTIATE_TEST_SUITE_P(Grid, PidRoundTrip, ::testing::Range(0, 28));

TEST(Rebase, SenderToReceiverPreservesDenotation) {
  // p sends q's pid to r: the pid means q in p's context; after rebase it
  // must mean q in r's context.
  Location q{1, 2, 9};   // subject
  Location p{1, 2, 3};   // sender, same machine as q
  Location r{4, 5, 6};   // receiver, different network
  Pid in_p = relativize(q, p);
  EXPECT_EQ(in_p, (Pid{0, 0, 9}));  // minimal in p's context
  auto in_r = rebase(in_p, p, r);
  ASSERT_TRUE(in_r.is_ok());
  // In r's context the pid must be fully qualified (q is far away) …
  EXPECT_EQ(in_r.value(), (Pid{1, 2, 9}));
  // … and denote the same location.
  EXPECT_EQ(qualify(in_r.value(), r).value(), q);
}

TEST(Rebase, IntoSameScopeShortensPid) {
  // Receiver is on the subject's machine: the rebased pid is local again.
  Location q{1, 2, 9};
  Location p{4, 5, 6};
  Location r{1, 2, 7};
  Pid in_p = relativize(q, p);  // fully qualified from afar
  EXPECT_TRUE(in_p.is_fully_qualified());
  auto in_r = rebase(in_p, p, r);
  ASSERT_TRUE(in_r.is_ok());
  EXPECT_EQ(in_r.value(), (Pid{0, 0, 9}));
  EXPECT_EQ(qualify(in_r.value(), r).value(), q);
}

TEST(Rebase, SelfPidBecomesSenderPid) {
  // A process can send (0,0,0) meaning *itself*; the receiver must get a
  // pid that denotes the sender.
  Location p{1, 2, 3};
  Location r{1, 5, 6};
  auto in_r = rebase(Pid::self(), p, r);
  ASSERT_TRUE(in_r.is_ok());
  EXPECT_EQ(qualify(in_r.value(), r).value(), p);
}

TEST(Rebase, MalformedPidFails) {
  EXPECT_FALSE(rebase(Pid{2, 0, 1}, Location{1, 1, 1}, Location{1, 1, 2})
                   .is_ok());
}

// Law: rebase is transitive — relaying a pid p→r1→r2 with remapping at each
// hop denotes the same location as sending it directly.
class RebaseChain : public ::testing::TestWithParam<int> {};

TEST_P(RebaseChain, TransitivityAcrossHops) {
  int s = GetParam();
  Location subject{1, 2, static_cast<Addr>(1 + s % 5)};
  Location sender{1, 2, 9};
  Location hops[] = {{1, 2, 8}, {1, 7, 1}, {3, 1, 1}, {2, 2, 2}};
  Location r1 = hops[s % 4];
  Location r2 = hops[(s + 1) % 4];
  Pid at_sender = relativize(subject, sender);
  auto at_r1 = rebase(at_sender, sender, r1);
  ASSERT_TRUE(at_r1.is_ok());
  auto at_r2 = rebase(at_r1.value(), r1, r2);
  ASSERT_TRUE(at_r2.is_ok());
  auto direct = rebase(at_sender, sender, r2);
  ASSERT_TRUE(direct.is_ok());
  EXPECT_EQ(qualify(at_r2.value(), r2).value(), subject);
  EXPECT_EQ(at_r2.value(), direct.value());
}

INSTANTIATE_TEST_SUITE_P(Chains, RebaseChain, ::testing::Range(0, 20));

TEST(PidPrinting, Format) {
  EXPECT_EQ((Pid{1, 2, 3}).to_string(), "(1,2,3)");
  std::ostringstream os;
  os << Location{4, 5, 6};
  EXPECT_EQ(os.str(), "<4,5,6>");
}

TEST(PidHash, Distinguishes) {
  std::hash<Pid> h;
  EXPECT_NE(h(Pid{0, 0, 1}), h(Pid{0, 1, 0}));
  EXPECT_NE(h(Pid{1, 2, 3}), h(Pid{3, 2, 1}));
}

}  // namespace
}  // namespace namecoh
