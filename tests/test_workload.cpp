// Tests for the workload generators: determinism, the cross-site common/
// unique name contract, the Unix skeleton, document generation, sampling.
#include <gtest/gtest.h>

#include "coherence/coherence.hpp"
#include "workload/doc_gen.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

TEST(TreeGen, DeterministicInSeed) {
  NamingGraph g1, g2;
  FileSystem f1(g1), f2(g2);
  EntityId r1 = f1.make_root("r");
  EntityId r2 = f2.make_root("r");
  TreeSpec spec;
  TreeStats s1 = populate_tree(f1, r1, spec, 99);
  TreeStats s2 = populate_tree(f2, r2, spec, 99);
  EXPECT_EQ(s1.directories, s2.directories);
  EXPECT_EQ(s1.files, s2.files);
  auto p1 = probes_from_dir(g1, r1);
  auto p2 = probes_from_dir(g2, r2);
  EXPECT_EQ(p1, p2);  // identical name sets
}

TEST(TreeGen, DifferentSeedsDiffer) {
  NamingGraph g1, g2;
  FileSystem f1(g1), f2(g2);
  EntityId r1 = f1.make_root("r");
  EntityId r2 = f2.make_root("r");
  TreeSpec spec;
  populate_tree(f1, r1, spec, 1);
  populate_tree(f2, r2, spec, 2);
  EXPECT_NE(probes_from_dir(g1, r1), probes_from_dir(g2, r2));
}

TEST(TreeGen, SiteTagsSplitCommonAndUnique) {
  // Same seed, different tags: common names identical on both sites,
  // unique names tagged and disjoint.
  NamingGraph g;
  FileSystem fs(g);
  EntityId r1 = fs.make_root("s1");
  EntityId r2 = fs.make_root("s2");
  TreeSpec spec;
  spec.common_fraction = 0.5;
  spec.site_tag = "s1";
  populate_tree(fs, r1, spec, 7);
  spec.site_tag = "s2";
  populate_tree(fs, r2, spec, 7);
  auto p1 = probes_from_dir(g, r1);
  auto p2 = probes_from_dir(g, r2);
  std::unordered_set<CompoundName> set2(p2.begin(), p2.end());
  std::size_t common = 0, unique = 0;
  for (const auto& name : p1) {
    if (set2.contains(name)) {
      ++common;
    } else {
      ++unique;
      // A unique name carries the site tag in at least one component (a
      // tagged directory makes every path through it site-unique).
      bool tagged = false;
      for (const Name& part : name.components()) {
        if (part.text().find(".s1") != std::string::npos) tagged = true;
      }
      EXPECT_TRUE(tagged) << name.to_path();
    }
  }
  EXPECT_GT(common, 0u);
  EXPECT_GT(unique, 0u);
}

TEST(TreeGen, CommonFractionExtremes) {
  NamingGraph g;
  FileSystem fs(g);
  EntityId r1 = fs.make_root("s1");
  EntityId r2 = fs.make_root("s2");
  TreeSpec spec;
  spec.common_fraction = 1.0;  // everything common
  spec.site_tag = "s1";
  populate_tree(fs, r1, spec, 3);
  spec.site_tag = "s2";
  populate_tree(fs, r2, spec, 3);
  EXPECT_EQ(probes_from_dir(g, r1), probes_from_dir(g, r2));

  EntityId r3 = fs.make_root("s3");
  EntityId r4 = fs.make_root("s4");
  spec.common_fraction = 0.0;  // nothing common
  spec.site_tag = "s3";
  populate_tree(fs, r3, spec, 3);
  spec.site_tag = "s4";
  populate_tree(fs, r4, spec, 3);
  auto p3 = probes_from_dir(g, r3);
  std::unordered_set<CompoundName> set4;
  for (const auto& n : probes_from_dir(g, r4)) set4.insert(n);
  for (const auto& n : p3) EXPECT_FALSE(set4.contains(n));
}

TEST(TreeGen, StatsMatchSpec) {
  NamingGraph g;
  FileSystem fs(g);
  EntityId root = fs.make_root("r");
  TreeSpec spec;
  spec.depth = 2;
  spec.dirs_per_dir = 2;
  spec.files_per_dir = 3;
  TreeStats stats = populate_tree(fs, root, spec, 5);
  // Dirs: 2 + 4 = 6; files: 3 per dir × (1 + 2 + 4) dirs = 21.
  EXPECT_EQ(stats.directories, 6u);
  EXPECT_EQ(stats.files, 21u);
}

TEST(TreeGen, UnixSkeletonHasCanonicalPaths) {
  NamingGraph g;
  FileSystem fs(g);
  EntityId root = fs.make_root("m1");
  TreeStats stats = populate_unix_skeleton(fs, root, "m1");
  EXPECT_GT(stats.files, 5u);
  Context ctx = FileSystem::make_process_context(root, root);
  for (const char* path : {"/bin/sh", "/etc/passwd", "/usr/lib/libc.a",
                           "/home/m1/notes.txt"}) {
    EXPECT_TRUE(fs.resolve_path(ctx, path).ok()) << path;
  }
  // Content mentions the site.
  Resolution sh = fs.resolve_path(ctx, "/bin/sh");
  EXPECT_NE(g.data(sh.entity).find("m1"), std::string::npos);
}

TEST(TreeGen, SampleProbesZipfSkewed) {
  Rng rng(11);
  std::vector<CompoundName> all;
  for (int i = 0; i < 50; ++i) {
    all.push_back(CompoundName::path("/f" + std::to_string(i)));
  }
  auto sample = sample_probes(rng, all, 2000, 1.2);
  EXPECT_EQ(sample.size(), 2000u);
  std::size_t first = 0, last = 0;
  for (const auto& s : sample) {
    if (s == all.front()) ++first;
    if (s == all.back()) ++last;
  }
  EXPECT_GT(first, last);
  EXPECT_TRUE(sample_probes(rng, {}, 10).empty());
}

TEST(DocGen, CountsMatchSpec) {
  NamingGraph g;
  FileSystem fs(g);
  EntityId root = fs.make_root("r");
  DocSpec spec;
  spec.chapters = 2;
  spec.sections_per_chapter = 3;
  spec.shared_refs_per_section = 2;
  Document doc = make_document(fs, root, Name("d"), spec);
  // Files: book.tex + style.sty + 2 chapters + 6 sections = 10.
  EXPECT_EQ(doc.files, 10u);
  // Refs: 1 (root style) + 2 (chapter includes) + 6 (section includes)
  //       + 6×2 (shared refs) = 21.
  EXPECT_EQ(doc.refs, 21u);
  EXPECT_TRUE(fs.is_dir(doc.subtree));
  EXPECT_TRUE(fs.is_file(doc.root_file));
}

TEST(DocGen, DuplicateNameFails) {
  NamingGraph g;
  FileSystem fs(g);
  EntityId root = fs.make_root("r");
  make_document(fs, root, Name("d"), DocSpec{});
  EXPECT_THROW(make_document(fs, root, Name("d"), DocSpec{}),
               PreconditionError);
}

}  // namespace
}  // namespace namecoh
