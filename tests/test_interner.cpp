// The name interner and everything that rides on it: atom identity,
// trivially-copyable Name handles, SmallVec inline/spill behavior,
// NameSlice views, the flat Context representation (extensional equality +
// version semantics), slice/owned resolution agreement over generated
// trees, and the referral-suffix matcher used by the resolver client.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/interner.hpp"
#include "core/name.hpp"
#include "core/resolve.hpp"
#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "util/small_vec.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

// --- NameTable -------------------------------------------------------------

TEST(NameTable, InternDeduplicates) {
  NameTable& table = NameTable::global();
  const NameId a1 = table.intern("intern-dedup-a");
  const NameId a2 = table.intern("intern-dedup-a");
  const NameId b = table.intern("intern-dedup-b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(table.text(a1), "intern-dedup-a");
  EXPECT_EQ(table.text(b), "intern-dedup-b");
}

TEST(NameTable, ReservedAtomsAreFixed) {
  NameTable& table = NameTable::global();
  EXPECT_EQ(table.intern("/"), kRootAtom);
  EXPECT_EQ(table.intern("."), kCwdAtom);
  EXPECT_EQ(table.intern(".."), kParentAtom);
  EXPECT_EQ(Name::root().id(), kRootAtom);
  EXPECT_EQ(Name::cwd().id(), kCwdAtom);
  EXPECT_EQ(Name::parent().id(), kParentAtom);
  EXPECT_TRUE(Name::root().is_root());
  EXPECT_TRUE(Name::cwd().is_cwd());
  EXPECT_TRUE(Name::parent().is_parent());
}

TEST(NameTable, FindNeverInterns) {
  NameTable& table = NameTable::global();
  const std::size_t before = table.size();
  EXPECT_FALSE(table.find("never-interned-name").has_value());
  EXPECT_EQ(table.size(), before);
  const NameId id = table.intern("find-after-intern");
  ASSERT_TRUE(table.find("find-after-intern").has_value());
  EXPECT_EQ(*table.find("find-after-intern"), id);
}

TEST(NameTable, ValidationAtInternTimeOnly) {
  EXPECT_FALSE(NameTable::is_valid(""));
  EXPECT_FALSE(NameTable::is_valid("a/b"));
  EXPECT_FALSE(NameTable::is_valid(std::string_view("a\0b", 3)));
  EXPECT_TRUE(NameTable::is_valid("/"));
  EXPECT_TRUE(NameTable::is_valid("."));
  EXPECT_TRUE(NameTable::is_valid(".."));
  EXPECT_TRUE(NameTable::is_valid("ordinary"));
  EXPECT_FALSE(NameTable::global().try_intern("bad/name").is_ok());
  EXPECT_THROW(NameTable::global().intern(""), PreconditionError);
}

TEST(NameTable, TextReferencesAreStableAcrossGrowth) {
  NameTable& table = NameTable::global();
  const NameId id = table.intern("stable-text-probe");
  const std::string* before = &table.text(id);
  for (int i = 0; i < 2000; ++i) {
    table.intern("stable-text-filler-" + std::to_string(i));
  }
  EXPECT_EQ(before, &table.text(id));  // same storage, not just same value
}

// --- Name handles ----------------------------------------------------------

static_assert(std::is_trivially_copyable_v<Name>);
static_assert(sizeof(Name) == 4);
static_assert(std::is_trivially_copyable_v<Binding>);

TEST(InternedName, IdEqualityIsTextEquality) {
  EXPECT_EQ(Name("same-text"), Name("same-text"));
  EXPECT_EQ(Name("same-text").id(), Name("same-text").id());
  EXPECT_NE(Name("text-one"), Name("text-two"));
  EXPECT_EQ(std::hash<Name>{}(Name("same-text")),
            std::hash<Name>{}(Name("same-text")));
  EXPECT_EQ(Name::from_id(Name("round-trip").id()), Name("round-trip"));
}

TEST(InternedName, OrderingIsLexicographicNotInternOrder) {
  // Intern in reverse so atom order and text order disagree.
  const Name z("zz-order-probe");
  const Name a("aa-order-probe");
  EXPECT_LT(z.id(), a.id());  // atom order follows intern history...
  EXPECT_LT(a, z);            // ...but comparison follows the text
  EXPECT_GT(z, a);
  std::vector<Name> names{z, a, Name("mm-order-probe")};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0].text(), "aa-order-probe");
  EXPECT_EQ(names[1].text(), "mm-order-probe");
  EXPECT_EQ(names[2].text(), "zz-order-probe");
}

// --- SmallVec --------------------------------------------------------------

TEST(SmallVec, StaysInlineThenSpills) {
  SmallVec<Name, 2> v;
  v.push_back(Name("sv-0"));
  v.push_back(Name("sv-1"));
  EXPECT_FALSE(v.spilled());
  v.push_back(Name("sv-2"));
  EXPECT_TRUE(v.spilled());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], Name("sv-0"));
  EXPECT_EQ(v[1], Name("sv-1"));
  EXPECT_EQ(v[2], Name("sv-2"));
}

TEST(SmallVec, CopyAndMovePreserveContents) {
  SmallVec<Name, 2> v;
  for (int i = 0; i < 5; ++i) v.push_back(Name("svc-" + std::to_string(i)));
  SmallVec<Name, 2> copy = v;
  EXPECT_EQ(copy, v);
  SmallVec<Name, 2> moved = std::move(copy);
  EXPECT_EQ(moved, v);
  SmallVec<Name, 2> inline_v;
  inline_v.push_back(Name("svc-inline"));
  SmallVec<Name, 2> inline_moved = std::move(inline_v);
  ASSERT_EQ(inline_moved.size(), 1u);
  EXPECT_EQ(inline_moved[0], Name("svc-inline"));
}

// --- CompoundName inline storage -------------------------------------------

TEST(CompoundNameStorage, LongNamesSpillAndStillBehave) {
  std::vector<Name> parts;
  for (int i = 0; i < 12; ++i) parts.emplace_back("cn-" + std::to_string(i));
  const CompoundName name(parts);
  EXPECT_EQ(name.size(), 12u);
  EXPECT_EQ(name.front(), parts.front());
  EXPECT_EQ(name.back(), parts.back());
  const CompoundName copy = name;  // deep copy of the spilled buffer
  EXPECT_EQ(copy, name);
  EXPECT_EQ(copy.rest(), name.rest());
  EXPECT_EQ(std::hash<CompoundName>{}(copy), std::hash<CompoundName>{}(name));
}

// --- NameSlice -------------------------------------------------------------

TEST(NameSliceView, ViewsShareStorageWithOwner) {
  const CompoundName name = CompoundName::path("/usr/lib/libc.so");
  const NameSlice all = name;  // implicit
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(&all[0], &name.at(0));  // borrowed, not copied
  EXPECT_TRUE(all.is_absolute());
  EXPECT_EQ(all.to_path(), "/usr/lib/libc.so");

  const NameSlice tail = all.rest();
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.to_path(), "usr/lib/libc.so");
  EXPECT_EQ(tail.joined(), "usr/lib/libc.so");

  EXPECT_EQ(all.subslice(2).to_path(), "lib/libc.so");
  EXPECT_EQ(all.subslice(1, 2).joined(), "usr/lib");
  EXPECT_TRUE(all.subslice(4).empty());
  EXPECT_EQ(all.subslice(4).to_path(), "");
}

TEST(NameSliceView, MaterializedSliceEqualsOwner) {
  const CompoundName name = CompoundName::relative("a/b/c");
  EXPECT_EQ(CompoundName(name.slice()), name);
  EXPECT_EQ(CompoundName(name.slice().rest()), name.rest());
  EXPECT_EQ(name.slice(), NameSlice(name));
  EXPECT_NE(name.slice().rest(), NameSlice(name));
  EXPECT_EQ(CompoundName(name.slice()).to_path(), name.to_path());
}

// --- Context: flat representation ------------------------------------------

TEST(FlatContext, VersionSemanticsUnchanged) {
  Context ctx;
  EXPECT_EQ(ctx.version(), 0u);
  ctx.bind(Name("v-a"), EntityId(1));
  EXPECT_EQ(ctx.version(), 1u);          // bind new: +1
  ctx.bind(Name("v-a"), EntityId(1));
  EXPECT_EQ(ctx.version(), 1u);          // rebind same entity: no-op
  ctx.bind(Name("v-a"), EntityId(2));
  EXPECT_EQ(ctx.version(), 2u);          // rebind different entity: +1
  EXPECT_FALSE(ctx.unbind(Name("v-missing")));
  EXPECT_EQ(ctx.version(), 2u);          // unbind absent: no-op
  EXPECT_TRUE(ctx.unbind(Name("v-a")));
  EXPECT_EQ(ctx.version(), 3u);          // unbind existing: +1
}

TEST(FlatContext, ExtensionalEqualityIgnoresBindOrder) {
  Context forward;
  forward.bind(Name("ext-a"), EntityId(1));
  forward.bind(Name("ext-b"), EntityId(2));
  forward.bind(Name("ext-c"), EntityId(3));
  Context backward;
  backward.bind(Name("ext-c"), EntityId(3));
  backward.bind(Name("ext-a"), EntityId(7));  // detour...
  backward.bind(Name("ext-b"), EntityId(2));
  backward.bind(Name("ext-a"), EntityId(1));  // ...repaired
  EXPECT_EQ(forward, backward);  // same function, different history
  EXPECT_NE(forward.version(), backward.version());
  backward.bind(Name("ext-c"), EntityId(9));
  EXPECT_NE(forward, backward);
}

TEST(FlatContext, BindingsAreSortedByAtomAndLookupsAgree) {
  Context ctx;
  std::vector<Name> names;
  for (int i = 0; i < 40; ++i) {
    names.emplace_back("flat-" + std::to_string((i * 23) % 40));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    ctx.bind(names[i], EntityId(100 + i));
  }
  auto view = ctx.bindings();
  ASSERT_EQ(view.size(), 40u);
  for (std::size_t i = 1; i < view.size(); ++i) {
    EXPECT_LT(view[i - 1].name.id(), view[i].name.id());
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(ctx(names[i]), EntityId(100 + i));
  }
  EXPECT_EQ(ctx(Name("flat-unbound")), EntityId::invalid());
}

TEST(FlatContext, RenderingIsTextOrdered) {
  // Intern "zz" before "aa" so atom order disagrees with text order.
  Context ctx;
  ctx.bind(Name("zz-render"), EntityId(5));
  ctx.bind(Name("aa-render"), EntityId(6));
  EXPECT_EQ(ctx.to_string(), "{aa-render -> #6, zz-render -> #5}");
}

// --- Slice vs owned resolution over generated trees ------------------------

TEST(SliceResolution, SliceAndOwnedAgreeOnGeneratedTree) {
  NamingGraph graph;
  FileSystem fs(graph);
  EntityId root = fs.make_root("site");
  TreeSpec spec;
  spec.depth = 4;
  spec.dirs_per_dir = 2;
  spec.files_per_dir = 3;
  populate_tree(fs, root, spec, /*seed=*/1234);

  std::vector<CompoundName> paths;
  fs.walk(root, [&](const CompoundName& path, EntityId) {
    paths.push_back(path);
  });
  ASSERT_GT(paths.size(), 20u);

  for (const CompoundName& name : paths) {
    const Resolution owned = resolve_from(graph, root, name);
    const Resolution sliced = resolve_from(graph, root, name.slice());
    ASSERT_TRUE(owned.ok()) << name.to_path();
    EXPECT_TRUE(owned.same_entity(sliced)) << name.to_path();
    EXPECT_EQ(owned.trail, sliced.trail);
    EXPECT_EQ(owned.steps, sliced.steps);

    // Suffix agreement: peeling k components off the front and resolving
    // the borrowed tail from the walked-to context matches the owned
    // CompoundName::rest() chain.
    if (name.size() < 2) continue;
    const Resolution head = resolve_from(
        graph, root, name.slice().subslice(0, 1));
    ASSERT_TRUE(head.ok());
    if (!graph.is_context_object(head.entity)) continue;
    const Resolution via_rest =
        resolve_from(graph, head.entity, name.rest());
    const Resolution via_slice =
        resolve_from(graph, head.entity, name.slice().rest());
    EXPECT_TRUE(via_rest.same_entity(via_slice)) << name.to_path();
    EXPECT_TRUE(owned.same_entity(via_slice)) << name.to_path();
  }
}

// --- referral_suffix -------------------------------------------------------

TEST(ReferralSuffix, MatchesTrueSuffixes) {
  const CompoundName sent = CompoundName::relative("a/b/c");
  auto tail = referral_suffix(sent, "b/c");
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, sent.slice().subslice(1));
  EXPECT_EQ(tail->joined(), "b/c");

  auto full = referral_suffix(sent, "a/b/c");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, sent.slice());

  auto empty = referral_suffix(sent, "");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(ReferralSuffix, MatchesAcrossElidedCwdPrefix) {
  // The client renders ⟨".","a","b"⟩ as "a/b" on the wire; the server's
  // parsed view has no ".". A full-path referral must still land on the
  // suffix past the elided prefix.
  const CompoundName sent = CompoundName::path("a/b");
  ASSERT_EQ(sent.size(), 3u);  // ⟨".", "a", "b"⟩
  auto tail = referral_suffix(sent, "a/b");
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, sent.slice().subslice(1));
}

TEST(ReferralSuffix, RejectsNonSuffixes) {
  const CompoundName sent = CompoundName::relative("a/b/c");
  EXPECT_FALSE(referral_suffix(sent, "x/c").has_value());
  EXPECT_FALSE(referral_suffix(sent, "a/b").has_value());   // prefix, not suffix
  EXPECT_FALSE(referral_suffix(sent, "c/c").has_value());
  EXPECT_FALSE(referral_suffix(sent, "a/b/c/d").has_value());  // too long
  EXPECT_FALSE(referral_suffix(sent, "b//c").has_value());  // empty piece
}

}  // namespace
}  // namespace namecoh
