// Replication and fault-injection tests: AuthorityMap replica sets,
// epoch-stamped update propagation to secondaries, client failover with
// per-replica health, deterministic fault schedules, and the interaction
// between stale secondary answers and the client's epoch-invalidated
// cache (docs/REPLICATION.md).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "sim/faults.hpp"

namespace namecoh {
namespace {

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest()
      : fs_(graph_), transport_(sim_, net_), faults_(sim_),
        service_(graph_, net_, transport_, homes_) {
    transport_.attach_faults(&faults_);
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    m3_ = net_.add_machine(lan, "m3");
    root_ = fs_.make_root("m1-root");
    shared_ = fs_.make_root("shared");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file_at(shared_, "proj/readme", "v1").is_ok());
    ASSERT_TRUE(fs_.create_file_at(shared_, "proj/other", "other").is_ok());
    ASSERT_TRUE(fs_.attach(root_, Name("shared"), shared_).is_ok());
    // The shared tree is replicated: primary m2, secondary m3. The local
    // tree keeps a single-machine replica set, exercising the compat path.
    homes_.set_replicas_subtree(graph_, shared_, {m2_, m3_});
    homes_.set_home_subtree(graph_, root_, m1_);
    server1_ = service_.add_server(m1_);
    server2_ = service_.add_server(m2_);
    server3_ = service_.add_server(m3_);
    Context ctx = FileSystem::make_process_context(root_, root_);
    proj_ = fs_.resolve_path(ctx, "/shared/proj").entity;
    readme_ = fs_.resolve_path(ctx, "/shared/proj/readme").entity;
    ASSERT_TRUE(proj_.valid());
    ASSERT_TRUE(readme_.valid());
  }

  /// Push every replicated context's snapshot and let it deliver.
  void sync_replicas() {
    for (EntityId ctx : service_.authorities().replicated_contexts()) {
      service_.publish_update(ctx);
    }
    sim_.run();
  }

  /// Short timeouts so crashed-replica budgets exhaust quickly.
  static ResolverClientConfig fast_config() {
    ResolverClientConfig config;
    config.retry.request_timeout = 200;
    config.retry.retries = 1;
    config.retry.backoff_multiplier = 2.0;
    return config;
  }

  /// Rebind proj/readme on the primary's graph; bumps proj's rebind epoch.
  EntityId rebind_readme(const char* contents) {
    EXPECT_TRUE(fs_.unlink(proj_, Name("readme")).is_ok());
    auto created = fs_.create_file(proj_, Name("readme"), contents);
    EXPECT_TRUE(created.is_ok());
    return created.value();
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  FaultInjector faults_;
  AuthorityMap homes_;
  NameService service_;
  MachineId m1_, m2_, m3_;
  EntityId root_, shared_, proj_, readme_;
  EndpointId server1_, server2_, server3_;
};

// --- AuthorityMap: replica sets --------------------------------------------

TEST_F(FailoverTest, AuthorityMapTracksOrderedReplicaSets) {
  // set_home is a one-machine replica set (the compat special case).
  ASSERT_EQ(homes_.replicas_of(root_).size(), 1u);
  EXPECT_EQ(homes_.home_of(root_).value(), m1_);
  EXPECT_TRUE(homes_.is_primary(root_, m1_));
  EXPECT_FALSE(homes_.is_replica(root_, m2_));

  // The replicated subtree walk claimed both shared/ and shared/proj.
  ASSERT_EQ(homes_.replicas_of(shared_).size(), 2u);
  EXPECT_EQ(homes_.home_of(shared_).value(), m2_);  // primary = first
  EXPECT_TRUE(homes_.is_primary(shared_, m2_));
  EXPECT_TRUE(homes_.is_replica(shared_, m3_));
  EXPECT_FALSE(homes_.is_primary(shared_, m3_));
  EXPECT_FALSE(homes_.is_replica(shared_, m1_));
  ASSERT_EQ(homes_.replicas_of(proj_).size(), 2u);

  // replicated_contexts lists exactly the multi-machine sets.
  auto replicated = homes_.replicated_contexts();
  EXPECT_EQ(replicated.size(), 2u);  // shared_ and proj_
  for (EntityId ctx : replicated) {
    EXPECT_TRUE(ctx == shared_ || ctx == proj_);
  }
}

// --- Update propagation ----------------------------------------------------

TEST_F(FailoverTest, PublishUpdateSyncsSecondariesAtCurrentEpoch) {
  EXPECT_FALSE(service_.replica_epoch(m3_, proj_).has_value());
  sync_replicas();
  auto applied = service_.replica_epoch(m3_, proj_);
  ASSERT_TRUE(applied.has_value());
  EXPECT_EQ(*applied, graph_.rebind_epoch(proj_));
  // The primary never stores snapshots of itself.
  EXPECT_FALSE(service_.replica_epoch(m2_, proj_).has_value());
  StatsSnapshot stats = service_.snapshot();
  EXPECT_EQ(stats["update_pushes"], 2u);    // shared_ and proj_, one secondary
  EXPECT_EQ(stats["updates_applied"], 2u);
  EXPECT_EQ(stats["updates_stale"], 0u);
}

TEST_F(FailoverTest, RepushedSnapshotAtSameEpochIsSuppressedAtThePrimary) {
  sync_replicas();
  const auto epoch_before = service_.replica_epoch(m3_, proj_);
  sync_replicas();  // same epochs again: the epoch gate pushes nothing
  StatsSnapshot stats = service_.snapshot();
  EXPECT_EQ(stats["update_pushes"], 2u);       // only the first round's
  EXPECT_EQ(stats["pushes_suppressed"], 2u);   // second round: both gated
  EXPECT_EQ(stats["updates_applied"], 2u);
  EXPECT_EQ(stats["updates_stale"], 0u);       // nothing even arrived
  EXPECT_EQ(service_.replica_epoch(m3_, proj_), epoch_before);
}

TEST_F(FailoverTest, AntiEntropyCatchesLaggingSecondaryUp) {
  sync_replicas();
  // Partition primary → secondary: the direct publish after the rebind is
  // lost, so the secondary lags at the old epoch.
  faults_.partition_one_way(m2_.value(), m3_.value());
  rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();
  const std::uint64_t new_epoch = graph_.rebind_epoch(proj_);
  ASSERT_LT(*service_.replica_epoch(m3_, proj_), new_epoch);

  // Heal and let anti-entropy republish on its own clock: the lag is
  // bounded by the repair interval, not by the lost message.
  faults_.heal_one_way(m2_.value(), m3_.value());
  service_.start_anti_entropy(1000);
  sim_.run_until(sim_.now() + 3000);
  service_.stop_anti_entropy();
  EXPECT_EQ(*service_.replica_epoch(m3_, proj_), new_epoch);
}

// --- Client failover -------------------------------------------------------

TEST_F(FailoverTest, CrashedPrimaryDuringReferralChaseFailsOverToSecondary) {
  sync_replicas();
  faults_.crash(m2_.value());
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        fast_config());
  // m1 refers the chase to shared's primary m2 (crashed); the client must
  // exhaust m2's backoff budget, fail over to m3, and complete from its
  // replica store.
  auto result = client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result.value(), readme_);
  StatsSnapshot stats = client.snapshot();
  EXPECT_GE(stats["failovers"], 1u);
  EXPECT_GE(stats["timeouts"], 2u);  // both attempts at m2 timed out
  EXPECT_EQ(stats["failures"], 0u);
  EXPECT_GE(service_.snapshot()["store_answers"], 1u);
  EXPECT_GT(transport_.metrics().counter_value("transport.fault.crash_drops"),
            0u);
}

TEST_F(FailoverTest, QuarantinedReplicaIsNotRetriedOnTheNextResolution) {
  sync_replicas();
  faults_.crash(m2_.value());
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        fast_config());
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("shared/proj/readme"))
          .is_ok());
  const std::uint64_t timeouts_after_first = client.snapshot()["timeouts"];
  ASSERT_GE(timeouts_after_first, 2u);
  // m2 is now quarantined: the next resolution must go straight to the
  // live secondary without burning another timeout budget on the corpse.
  auto second =
      client.resolve(root_, CompoundName::relative("shared/proj/other"));
  ASSERT_TRUE(second.is_ok()) << second.status();
  EXPECT_EQ(client.snapshot()["timeouts"], timeouts_after_first);
  EXPECT_EQ(client.snapshot()["failovers"], 1u);  // no new failover either
}

TEST_F(FailoverTest, FailoverLatencyHistogramRecordsFailedOverHops) {
  sync_replicas();
  faults_.crash(m2_.value());
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        fast_config());
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("shared/proj/readme"))
          .is_ok());
  const std::string name = "ns.client." +
                           std::to_string(client.endpoint().value()) +
                           ".failover_latency";
  auto it = transport_.metrics().histograms().find(name);
  ASSERT_NE(it, transport_.metrics().histograms().end());
  EXPECT_EQ(it->second.total(), 1u);
  // The failed-over hop paid at least m2's full budget: 200 + 400 ticks.
  EXPECT_GE(it->second.observed_max(), 600.0);
}

// --- Staleness: the §5 weak-coherence window -------------------------------

TEST_F(FailoverTest, SecondaryServesStaleAnswerThenCatchesUp) {
  sync_replicas();
  const std::uint64_t old_epoch = *service_.replica_epoch(m3_, proj_);

  // Rebind on the primary; the secondary has NOT been told yet.
  EntityId new_readme = rebind_readme("v2");
  const std::uint64_t new_epoch = graph_.rebind_epoch(proj_);
  ASSERT_GT(new_epoch, old_epoch);

  faults_.crash(m2_.value());
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        fast_config());
  auto stale =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(stale.is_ok()) << stale.status();
  // The stale answer is the old entity, and its staleness is exactly the
  // epoch gap the injected fault created — never older than the last
  // applied snapshot.
  EXPECT_EQ(stale.value(), readme_);
  EXPECT_NE(stale.value(), new_readme);
  EXPECT_EQ(*service_.replica_epoch(m3_, proj_), old_epoch);

  // Restart the primary, propagate, and the same question now gets the
  // rebound answer — from either replica.
  faults_.restart(m2_.value());
  sync_replicas();
  EXPECT_EQ(*service_.replica_epoch(m3_, proj_), new_epoch);
  auto fresh =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(fresh.is_ok()) << fresh.status();
  EXPECT_EQ(fresh.value(), new_readme);
}

TEST_F(FailoverTest, PartitionHealsThenStaleCacheEntryIsInvalidated) {
  sync_replicas();
  ResolverClientConfig config = fast_config();
  config.cache_ttl = 1'000'000;  // far beyond the test's horizon
  config.epoch_invalidation = true;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);

  // Cut update propagation, rebind, and publish into the partition: the
  // secondary keeps serving the old epoch.
  faults_.partition_one_way(m2_.value(), m3_.value());
  EntityId new_readme = rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();

  // With the primary down, the client caches the secondary's stale answer
  // (stamped with the old epoch).
  faults_.crash(m2_.value());
  auto stale =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(stale.is_ok()) << stale.status();
  ASSERT_EQ(stale.value(), readme_);

  // Heal everything and let the secondary catch up.
  faults_.restart(m2_.value());
  faults_.heal_one_way(m2_.value(), m3_.value());
  sync_replicas();

  // A different lookup through the same authority returns the new epoch;
  // the cached stale entry is superseded and must die on its next probe.
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("shared/proj/other"))
          .is_ok());
  auto fresh =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(fresh.is_ok()) << fresh.status();
  EXPECT_EQ(fresh.value(), new_readme);
  EXPECT_GE(client.snapshot()["stale_epoch_drops"], 1u);
}

// --- Fault-injection determinism -------------------------------------------

/// One full faulted run, compressed to a comparable signature: every trace
/// event plus the fault counters.
std::vector<std::tuple<SimTime, int, std::uint64_t, std::uint64_t>>
faulted_run_signature() {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  TransportConfig tcfg;
  tcfg.drop_probability = 0.05;  // seeded transport rng: deterministic too
  Transport transport(sim, net, tcfg, /*seed=*/7);
  FaultInjector faults(sim);
  transport.attach_faults(&faults);
  transport.tracer().set_enabled(true);
  transport.tracer().set_capacity(65536);

  NetworkId lan = net.add_network("lan");
  MachineId m1 = net.add_machine(lan, "m1");
  MachineId m2 = net.add_machine(lan, "m2");
  MachineId m3 = net.add_machine(lan, "m3");
  EntityId root = fs.make_root("root");
  EntityId shared = fs.make_root("shared");
  EXPECT_TRUE(fs.create_file_at(shared, "proj/readme", "x").is_ok());
  EXPECT_TRUE(fs.attach(root, Name("shared"), shared).is_ok());
  AuthorityMap homes;
  homes.set_replicas_subtree(graph, shared, {m2, m3});
  homes.set_home_subtree(graph, root, m1);
  NameService service(graph, net, transport, homes);
  service.add_server(m1);
  service.add_server(m2);
  service.add_server(m3);
  for (EntityId ctx : homes.replicated_contexts()) {
    service.publish_update(ctx);
  }
  sim.run();

  // The scripted fault schedule: a reorder window over the whole run, a
  // mid-run crash of the primary, and a later restart.
  faults.add_reorder_window(0, 50000, /*max_extra=*/37, /*seed=*/42);
  faults.schedule_crash(1500, m2.value());
  faults.schedule_restart(9000, m2.value());
  faults.schedule_partition(2000, m1.value(), m3.value());
  faults.schedule_heal(4000, m1.value(), m3.value());

  ResolverClientConfig config;
  config.retry.request_timeout = 300;
  config.retry.retries = 2;
  ResolverClient client(graph, net, transport, sim, service, m1, "det",
                        config);
  for (int i = 0; i < 12; ++i) {
    (void)client.resolve(root, CompoundName::relative("shared/proj/readme"));
  }
  sim.run();

  std::vector<std::tuple<SimTime, int, std::uint64_t, std::uint64_t>> sig;
  for (const TraceEvent& e : transport.tracer().events()) {
    sig.emplace_back(e.at, static_cast<int>(e.kind), e.a, e.b);
  }
  for (const char* counter :
       {"transport.fault.crash_drops", "transport.fault.partition_drops",
        "transport.fault.delays", "transport.sent", "transport.delivered",
        "transport.dropped", "ns.server.updates_applied"}) {
    sig.emplace_back(0, -1, 0, transport.metrics().counter_value(counter));
  }
  return sig;
}

TEST(FaultDeterminismTest, SameSeedsSameSchedulesSameEventSequence) {
  // Two independent worlds with identical seeds and fault scripts must
  // produce bit-identical event histories — the property every replayed
  // failover experiment in EXPERIMENTS.md rests on.
  auto first = faulted_run_signature();
  auto second = faulted_run_signature();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- FaultInjector state transitions ---------------------------------------

TEST_F(FailoverTest, FaultTransitionsAreCountedAndTraced) {
  transport_.tracer().set_enabled(true);
  faults_.crash(m2_.value());
  faults_.crash(m2_.value());  // idempotent: no second transition
  faults_.restart(m2_.value());
  faults_.partition_one_way(m1_.value(), m3_.value());
  faults_.heal_one_way(m1_.value(), m3_.value());
  const MetricsRegistry& metrics = transport_.metrics();
  EXPECT_EQ(metrics.counter_value("transport.fault.crashes"), 1u);
  EXPECT_EQ(metrics.counter_value("transport.fault.restarts"), 1u);
  EXPECT_EQ(metrics.counter_value("transport.fault.partitions"), 1u);
  EXPECT_EQ(metrics.counter_value("transport.fault.heals"), 1u);
  EXPECT_EQ(transport_.tracer().count(EventKind::kFaultCrash), 1u);
  EXPECT_EQ(transport_.tracer().count(EventKind::kFaultRestart), 1u);
  EXPECT_EQ(transport_.tracer().count(EventKind::kFaultPartition), 1u);
  EXPECT_EQ(transport_.tracer().count(EventKind::kFaultHeal), 1u);
  EXPECT_EQ(faults_.crashed_count(), 0u);
  EXPECT_EQ(faults_.partition_count(), 0u);
}

}  // namespace
}  // namespace namecoh
