// Unit tests for the util library: Status/Result, Rng, stats, strings,
// Table, UnionFind, StrongId.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/union_find.hpp"

namespace namecoh {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = not_found_error("no such thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such thing");
}

TEST(Status, AllFactoryCodesDistinct) {
  std::set<StatusCode> codes = {
      not_found_error("").code(),       not_a_context_error("").code(),
      depth_exceeded_error("").code(),  invalid_argument_error("").code(),
      already_exists_error("").code(),  permission_error("").code(),
      unreachable_error("").code(),     failed_precondition_error("").code(),
      internal_error("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_EQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(status_code_name(StatusCode::kNotAContext), "NOT_A_CONTEXT");
  EXPECT_EQ(status_code_name(StatusCode::kDepthExceeded), "DEPTH_EXCEEDED");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = not_found_error("gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_FALSE(r.as_optional().has_value());
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = internal_error("boom");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ConstructingFromOkStatusThrows) {
  EXPECT_THROW((Result<int>(Status::ok())), std::logic_error);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.is_ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Check, ThrowsPreconditionError) {
  EXPECT_THROW(NAMECOH_CHECK(false, "nope"), PreconditionError);
  EXPECT_NO_THROW(NAMECOH_CHECK(true, "fine"));
}

// --- StrongId ---------------------------------------------------------------

struct FooTag {};
using FooId = StrongId<FooTag>;

TEST(StrongId, DefaultIsInvalid) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  FooId id(17);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 17u);
  EXPECT_LT(FooId(1), FooId(2));
}

TEST(StrongId, HashSpreadsSequentialIds) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<FooId>{}(FooId(i)));
  }
  EXPECT_EQ(hashes.size(), 100u);
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next(), vb = b.next(), vc = c.next();
    all_equal = all_equal && (va == vb);
    any_diff = any_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(21);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.2), 0u);
}

TEST(Rng, GeometricAlwaysAtLeastOne) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometric(0.5), 1u);
  EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, GeometricMeanRoughlyInverseP) {
  Rng rng(25);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent1(31), parent2(31);
  Rng fork_a1 = parent1.fork("a");
  Rng fork_a2 = parent2.fork("a");
  Rng fork_b = parent1.fork("b");
  EXPECT_EQ(fork_a1.next(), fork_a2.next());
  // Different labels give different streams (overwhelmingly likely).
  Rng fa = parent1.fork("a");
  EXPECT_NE(fa.next(), fork_b.next());
}

TEST(Rng, ChildStreamsAreKeyedOnSeedNotState) {
  // child(i) depends only on (construction seed, i): draws from the parent
  // before deriving must not shift the child streams. This is what makes
  // per-worker streams reproducible run to run (docs/PARALLELISM.md).
  Rng fresh(71);
  Rng warmed(71);
  for (int i = 0; i < 100; ++i) warmed.next();
  EXPECT_EQ(fresh.child(3).next(), warmed.child(3).next());
}

TEST(Rng, ChildStreamsAreDistinctPerIndex) {
  Rng parent(72);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t w = 0; w < 16; ++w) {
    firsts.insert(parent.child(w).next());
  }
  EXPECT_EQ(firsts.size(), 16u);
  // And distinct from the parent's own stream.
  EXPECT_NE(Rng(72).next(), Rng(72).child(0).next());
}

TEST(Rng, SeedAccessorReportsConstructionSeed) {
  EXPECT_EQ(Rng(123).seed(), 123u);
  EXPECT_EQ(Rng(123).child(2).seed(), Rng(123).child(2).seed());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, PickFromSpan) {
  Rng rng(41);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

// --- Stats ------------------------------------------------------------------

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(FractionCounter, Basics) {
  FractionCounter f;
  EXPECT_EQ(f.fraction(), 0.0);
  f.add(true);
  f.add(true);
  f.add(false);
  EXPECT_EQ(f.trials(), 3u);
  EXPECT_EQ(f.successes(), 2u);
  EXPECT_NEAR(f.fraction(), 2.0 / 3.0, 1e-12);
  FractionCounter g;
  g.add(false);
  f.merge(g);
  EXPECT_EQ(f.trials(), 4u);
  EXPECT_EQ(f.successes(), 2u);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  for (double x : {0.5, 1.5, 1.7, 3.0, 10.0}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);  // [0,1)
  EXPECT_EQ(h.counts()[1], 2u);  // [1,2)
  EXPECT_EQ(h.counts()[2], 1u);  // [2,4)
  EXPECT_EQ(h.counts()[3], 1u);  // overflow
  EXPECT_GT(h.quantile(0.9), 2.0);
  EXPECT_LE(h.quantile(0.2), 1.0);
}

// Regression: quantile(0) used to return 0.0 no matter where the samples
// sat, because the q*total target was 0 and the cumulative scan stopped in
// the first (possibly empty) bucket.
TEST(Histogram, QuantileZeroReportsFirstNonEmptyBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(3.0);  // only sample sits in [2,4)
  h.add(3.5);
  EXPECT_EQ(h.quantile(0.0), 2.0);  // lower edge of its bucket, not 0.0
  Histogram low({1.0, 2.0});
  low.add(0.5);  // first bucket [0,1): lower edge is genuinely 0
  EXPECT_EQ(low.quantile(0.0), 0.0);
  Histogram empty({1.0});
  EXPECT_EQ(empty.quantile(0.0), 0.0);  // no samples: stays 0
}

// Regression: the overflow bucket interpolated against an arbitrary
// `last_boundary * 2`; it now uses the largest value actually observed.
TEST(Histogram, OverflowBucketAnchorsOnObservedMax) {
  Histogram h({1.0, 2.0});
  h.add(100.0);  // far beyond 2*2=4, the old fabricated upper edge
  EXPECT_EQ(h.observed_max(), 100.0);
  EXPECT_EQ(h.quantile(1.0), 100.0);
  EXPECT_GT(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), 100.0);
}

TEST(Histogram, ObservedMaxTracksAllSamples) {
  Histogram h({10.0});
  EXPECT_EQ(h.observed_max(), 0.0);  // empty
  h.add(3.0);
  h.add(7.0);
  h.add(5.0);
  EXPECT_EQ(h.observed_max(), 7.0);
  // Max below the last boundary: the overflow edge falls back to the
  // boundary, and q=1 never exceeds it.
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(Histogram, RejectsBadBoundaries) {
  EXPECT_THROW(Histogram({}), PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), PreconditionError);
}

TEST(Histogram, MergeMatchesSequentialAdds) {
  Histogram a({1.0, 2.0, 4.0});
  Histogram b({1.0, 2.0, 4.0});
  Histogram all({1.0, 2.0, 4.0});
  for (double x : {0.5, 1.5, 3.0}) {
    a.add(x);
    all.add(x);
  }
  for (double x : {1.7, 10.0, 0.2}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.counts(), all.counts());
  EXPECT_EQ(a.observed_max(), all.observed_max());
  EXPECT_EQ(a.quantile(0.5), all.quantile(0.5));
  // b is unchanged by being merged from.
  EXPECT_EQ(b.total(), 3u);
}

TEST(Histogram, MergeEmptySides) {
  Histogram a({1.0, 2.0});
  Histogram empty({1.0, 2.0});
  a.add(5.0);
  a.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.observed_max(), 5.0);
  Histogram target({1.0, 2.0});
  target.merge(a);  // merging *into* an empty one copies the state
  EXPECT_EQ(target.total(), 1u);
  EXPECT_EQ(target.observed_max(), 5.0);
}

TEST(Histogram, MergeRejectsMismatchedBoundaries) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  EXPECT_THROW(a.merge(b), PreconditionError);
}

TEST(CategoryCounter, CountsByKey) {
  CategoryCounter c;
  c.add("x");
  c.add("x");
  c.add("y", 3);
  EXPECT_EQ(c.get("x"), 2u);
  EXPECT_EQ(c.get("y"), 3u);
  EXPECT_EQ(c.get("z"), 0u);
  EXPECT_EQ(c.total(), 5u);
}

// --- Strings ----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyPieces) {
  auto pieces = split("/a//b", '/');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "");
  EXPECT_EQ(pieces[1], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "b");
}

TEST(Strings, SplitSkipEmpty) {
  auto pieces = split("/a//b/", '/', /*skip_empty=*/true);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(Strings, SplitEmptyString) {
  auto pieces = split("", '/');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
  EXPECT_TRUE(split("", '/', true).empty());
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> pieces{"a", "b", "c"};
  EXPECT_EQ(join(pieces, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"solo"}, "/"), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/vice/file", "/vice"));
  EXPECT_FALSE(starts_with("/vic", "/vice"));
  EXPECT_TRUE(ends_with("a.tex", ".tex"));
  EXPECT_FALSE(ends_with("tex", ".tex"));
}

TEST(Strings, FormatFraction) {
  EXPECT_EQ(format_fraction(0.5), "0.500");
  EXPECT_EQ(format_fraction(1.0, 2), "1.00");
  EXPECT_EQ(format_fraction(0.12345, 4), "0.1235");
}

// --- Table ------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"scheme", "coherence"});
  t.add_row({"newcastle", "0.12"});
  t.add_row({"single-graph", "1.00"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("| scheme"), std::string::npos);
  EXPECT_NE(out.find("| newcastle"), std::string::npos);
  EXPECT_NE(out.find("| single-graph"), std::string::npos);
  // Every line has the same width.
  std::size_t first_line = out.find('\n');
  std::string line1 = out.substr(0, first_line);
  for (std::size_t pos = 0; pos < out.size();) {
    std::size_t end = out.find('\n', pos);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - pos, line1.size());
    pos = end + 1;
  }
}

TEST(Table, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(Table(std::vector<std::string>{}), PreconditionError);
}

TEST(Table, StoresRows) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[0], "1");
}

// --- UnionFind ----------------------------------------------------------------

TEST(UnionFind, SingletonsThenUnions) {
  UnionFind uf(5);
  EXPECT_EQ(uf.components(), 5u);
  EXPECT_FALSE(uf.same(0, 1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));  // already merged
  EXPECT_EQ(uf.components(), 4u);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.components(), 3u);
}

TEST(UnionFind, EnsureGrows) {
  UnionFind uf(2);
  uf.ensure(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.components(), 5u);
  EXPECT_FALSE(uf.same(3, 4));
}

TEST(UnionFind, TransitiveClosureProperty) {
  // Property: after uniting a chain 0-1-2-...-n, all pairs are same().
  UnionFind uf(20);
  for (std::size_t i = 0; i + 1 < 20; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.components(), 1u);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) EXPECT_TRUE(uf.same(i, j));
  }
}

}  // namespace
}  // namespace namecoh
