// Lease-based cache coherence tests (docs/COHERENCE.md): protocol v4 grant
// plumbing, kInvalidate callback pushes on rebind, renewal on re-use,
// degradation to the plain-TTL bound under partition, and the cache
// boundary semantics the lease work leans on — expiry at exactly
// `expires == now`, negative entries invalidated by an epoch bump, and an
// invalidate racing a same-tick cache probe.
#include <gtest/gtest.h>

#include <string>

#include "fs/file_system.hpp"
#include "ns/name_service.hpp"
#include "sim/faults.hpp"

namespace namecoh {
namespace {

// Topology timing (transport defaults): intra-machine one-way latency is 5
// ticks, same-network cross-machine one-way is 50. A local lookup settles
// at t+10; a referral chase local → remote settles at t+110.
constexpr SimDuration kLocalOneWay = 5;
constexpr SimDuration kLanOneWay = 50;

class LeaseTest : public ::testing::Test {
 protected:
  LeaseTest()
      : fs_(graph_), transport_(sim_, net_), faults_(sim_),
        service_(graph_, net_, transport_, homes_) {
    transport_.attach_faults(&faults_);
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    root_ = fs_.make_root("m1-root");
    shared_ = fs_.make_root("shared");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file_at(shared_, "proj/readme", "v1").is_ok());
    ASSERT_TRUE(fs_.create_file_at(root_, "local/data.txt", "d").is_ok());
    ASSERT_TRUE(fs_.attach(root_, Name("shared"), shared_).is_ok());
    homes_.set_home_subtree(graph_, shared_, m2_);
    homes_.set_home_subtree(graph_, root_, m1_);
    server1_ = service_.add_server(m1_);
    server2_ = service_.add_server(m2_);
    Context ctx = FileSystem::make_process_context(root_, root_);
    proj_ = fs_.resolve_path(ctx, "/shared/proj").entity;
    readme_ = fs_.resolve_path(ctx, "/shared/proj/readme").entity;
    data_ = fs_.resolve_path(ctx, "/local/data.txt").entity;
    ASSERT_TRUE(proj_.valid());
    ASSERT_TRUE(readme_.valid());
    ASSERT_TRUE(data_.valid());
  }

  /// Lease-coherent client config with a TTL long enough that every stale
  /// serve in these tests is the lease machinery's to prevent.
  static ResolverClientConfig lease_config() {
    ResolverClientConfig config;
    config.cache_ttl = 10000;
    config.lease_coherence = true;
    return config;
  }

  /// Rebind proj/readme on the authority's graph; bumps proj's rebind
  /// epoch, which is what publish_update turns into kInvalidate pushes.
  EntityId rebind_readme(const char* contents) {
    EXPECT_TRUE(fs_.unlink(proj_, Name("readme")).is_ok());
    auto created = fs_.create_file(proj_, Name("readme"), contents);
    EXPECT_TRUE(created.is_ok());
    return created.value();
  }

  static CompoundName readme_name() {
    return CompoundName::relative("shared/proj/readme");
  }

  std::string client_prefix(const ResolverClient& client) const {
    return "ns.client." + std::to_string(client.endpoint().value()) + ".";
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  FaultInjector faults_;
  AuthorityMap homes_;
  NameService service_;
  MachineId m1_, m2_;
  EntityId root_, shared_, proj_, readme_, data_;
  EndpointId server1_, server2_;
};

// --- Grant plumbing --------------------------------------------------------

TEST_F(LeaseTest, AnswerFromPrimaryGrantsLeaseReferralDoesNot) {
  transport_.tracer().set_enabled(true);
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        lease_config());
  auto result = client.resolve(root_, readme_name());
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(result.value(), readme_);
  // The chase touched two servers — m1 (referral) and m2 (answer) — but
  // only the answering authority promised anything: referrals carry no
  // binding to promise about.
  StatsSnapshot server = service_.snapshot();
  EXPECT_EQ(server["leases_granted"], 1u);
  EXPECT_EQ(server["lease_renewals"], 0u);
  EXPECT_EQ(service_.lease_count(m2_), 1u);
  EXPECT_EQ(service_.lease_count(m1_), 0u);
  EXPECT_EQ(transport_.tracer().count(EventKind::kLeaseGrant), 1u);
}

TEST_F(LeaseTest, LeaseOffClientSpeaksV3AndGetsNoLease) {
  // The default config leaves lease_coherence off: requests carry no flags
  // field, replies carry no lease tail, and the server's lease table stays
  // empty — the v3 compatibility contract.
  ResolverClientConfig config;
  config.cache_ttl = 10000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "v3",
                        config);
  auto result = client.resolve(root_, readme_name());
  ASSERT_TRUE(result.is_ok()) << result.status();
  EXPECT_EQ(service_.snapshot()["leases_granted"], 0u);
  EXPECT_EQ(service_.lease_count(m2_), 0u);
  // Caching still works — it just rides the plain TTL.
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());
  EXPECT_EQ(client.snapshot()["cache_hits"], 1u);
}

// --- The tentpole property: push invalidation closes the window ------------

TEST_F(LeaseTest, RebindPushesInvalidateAndDropsTheStaleEntry) {
  transport_.tracer().set_enabled(true);
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        lease_config());
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());

  EntityId new_readme = rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();

  EXPECT_EQ(service_.snapshot()["invalidates_pushed"], 1u);
  StatsSnapshot stats = client.snapshot();
  EXPECT_EQ(stats["invalidates_received"], 1u);
  EXPECT_GE(stats["stale_epoch_drops"], 1u);
  // Both ends trace the callback: the push at the authority, the
  // processing at the holder.
  EXPECT_EQ(transport_.tracer().count(EventKind::kInvalidate), 2u);

  // The cache entry died with the push, not at its TTL: the next lookup
  // misses and fetches the rebound entity.
  auto fresh = client.resolve(root_, readme_name());
  ASSERT_TRUE(fresh.is_ok()) << fresh.status();
  EXPECT_EQ(fresh.value(), new_readme);
  EXPECT_EQ(client.snapshot()["cache_misses"], 2u);

  // The recorded staleness window is the push's one-way transit — the
  // rebind happened at the authority, the drop one LAN hop later.
  auto it = transport_.metrics().histograms().find(client_prefix(client) +
                                                  "stale_window");
  ASSERT_NE(it, transport_.metrics().histograms().end());
  EXPECT_EQ(it->second.total(), 1u);
  EXPECT_EQ(it->second.observed_max(), static_cast<double>(kLanOneWay));
}

TEST_F(LeaseTest, LeaseClientSeesRebindWhileTtlClientServesStale) {
  // The comparative claim behind bench_x6: with identical TTLs, the leased
  // client's window is one push transit while the TTL-only client rides
  // out its full TTL.
  ResolverClient leased(graph_, net_, transport_, sim_, service_, m1_,
                        "leased", lease_config());
  ResolverClientConfig ttl_only_config;
  ttl_only_config.cache_ttl = 10000;
  ResolverClient ttl_only(graph_, net_, transport_, sim_, service_, m1_,
                          "ttl", ttl_only_config);
  ASSERT_TRUE(leased.resolve(root_, readme_name()).is_ok());
  ASSERT_TRUE(ttl_only.resolve(root_, readme_name()).is_ok());

  EntityId new_readme = rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();

  auto leased_view = leased.resolve(root_, readme_name());
  auto ttl_view = ttl_only.resolve(root_, readme_name());
  ASSERT_TRUE(leased_view.is_ok());
  ASSERT_TRUE(ttl_view.is_ok());
  EXPECT_EQ(leased_view.value(), new_readme);
  EXPECT_EQ(ttl_view.value(), readme_);  // stale, within its TTL rights
  EXPECT_EQ(ttl_only.snapshot()["invalidates_received"], 0u);
}

// --- Renewal ---------------------------------------------------------------

TEST_F(LeaseTest, HitNearExpiryRenewsTheLeaseInTheBackground) {
  service_.set_lease_policy(400);  // default renew margin: 100
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        lease_config());
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());
  // Settled at t=110 with the lease term running to ~510.

  sim_.run_until(450);
  auto hit = client.resolve(root_, readme_name());
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value(), readme_);
  StatsSnapshot stats = client.snapshot();
  EXPECT_EQ(stats["cache_hits"], 1u);
  EXPECT_EQ(stats["lease_renewals"], 1u);

  // Let the background refresh land: the server refreshes the existing
  // promise rather than stacking a second record.
  sim_.run();
  StatsSnapshot server = service_.snapshot();
  EXPECT_EQ(server["leases_granted"], 1u);
  EXPECT_EQ(server["lease_renewals"], 1u);
  EXPECT_EQ(service_.lease_count(m2_), 1u);

  // The renewed term outlives the original 510: a rebind now still owes —
  // and delivers — a push.
  EntityId new_readme = rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();
  EXPECT_EQ(service_.snapshot()["invalidates_pushed"], 1u);
  EXPECT_EQ(client.snapshot()["invalidates_received"], 1u);
  auto fresh = client.resolve(root_, readme_name());
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh.value(), new_readme);
}

TEST_F(LeaseTest, HitWithPlentyOfTermLeftDoesNotRenew) {
  service_.set_lease_policy(5000);
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        lease_config());
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());
  StatsSnapshot stats = client.snapshot();
  EXPECT_EQ(stats["cache_hits"], 1u);
  EXPECT_EQ(stats["lease_renewals"], 0u);
  EXPECT_EQ(service_.snapshot()["lease_renewals"], 0u);
}

// --- Partition: degrade to the TTL bound -----------------------------------

TEST_F(LeaseTest, PartitionDegradesLeaseToPlainTtl) {
  service_.set_lease_policy(1000);
  ResolverClientConfig config = lease_config();
  config.cache_ttl = 5000;
  config.retry.request_timeout = 300;
  config.retry.retries = 0;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());
  // Settled at t=110: lease to ~1110, TTL to ~5110.

  // Cut the authority → client direction: pushes and replies are lost.
  faults_.partition_one_way(m2_.value(), m1_.value());
  rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();
  EXPECT_EQ(service_.snapshot()["invalidates_pushed"], 1u);
  EXPECT_EQ(client.snapshot()["invalidates_received"], 0u);

  // Within the lease term the entry still serves (stale — the push was
  // lost; the term is the client's bound on how long that can last).
  auto within_term = client.resolve(root_, readme_name());
  ASSERT_TRUE(within_term.is_ok());
  EXPECT_EQ(within_term.value(), readme_);

  // Past the term the promise is void: the client degrades the entry to
  // plain TTL — still serving, no longer pretending the lease holds, and
  // not spinning renewals against an unreachable authority.
  sim_.run_until(1200);
  auto degraded = client.resolve(root_, readme_name());
  ASSERT_TRUE(degraded.is_ok());
  EXPECT_EQ(degraded.value(), readme_);
  StatsSnapshot stats = client.snapshot();
  EXPECT_EQ(stats["lease_degrades"], 1u);
  EXPECT_EQ(stats["lease_renewals"], 0u);

  // Past the TTL the staleness bound is up: the entry dies, and the wire
  // exchange fails cleanly into the partition (no hang, no stale serve).
  sim_.run_until(5200);
  auto past_ttl = client.resolve(root_, readme_name());
  EXPECT_FALSE(past_ttl.is_ok());
  EXPECT_GE(client.snapshot()["timeouts"], 1u);

  // Heal: the next resolution completes and sees the rebound binding.
  faults_.heal_one_way(m2_.value(), m1_.value());
  auto healed = client.resolve(root_, readme_name());
  ASSERT_TRUE(healed.is_ok()) << healed.status();
  EXPECT_NE(healed.value(), readme_);
}

// --- Satellite: the epoch high-water table is bounded -----------------------

TEST_F(LeaseTest, EpochTableIsBoundedLru) {
  for (int i = 0; i < 8; ++i) {
    const std::string dir = "d" + std::to_string(i);
    ASSERT_TRUE(fs_.create_file_at(shared_, dir + "/f", "x").is_ok());
  }
  // The new directories were created after SetUp claimed the subtree;
  // re-walk so they get an authoritative home too.
  homes_.set_home_subtree(graph_, shared_, m2_);

  ResolverClientConfig config;  // cache off: every resolve notes epochs
  config.epoch_table_capacity = 4;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  for (int i = 0; i < 8; ++i) {
    const std::string path = "shared/d" + std::to_string(i) + "/f";
    ASSERT_TRUE(client.resolve(root_, CompoundName::relative(path)).is_ok());
  }
  // Nine distinct authorities answered (shared_ on every referral plus the
  // eight directories); the table kept only the most recent four.
  const double tracked = transport_.metrics().gauge_value(
      client_prefix(client) + "epochs_tracked");
  EXPECT_EQ(tracked, 4.0);
}

// --- Satellite: cache boundary semantics ------------------------------------

TEST_F(LeaseTest, EntryExpiresAtExactlyItsTtlBoundary) {
  ResolverClientConfig config;
  config.cache_ttl = 500;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("local/data.txt")).is_ok());
  ASSERT_EQ(sim_.now(), 2 * kLocalOneWay);  // answered at t=10, expires 510

  // One tick before the boundary the entry still serves...
  sim_.run_until(509);
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("local/data.txt")).is_ok());
  EXPECT_EQ(client.snapshot()["cache_hits"], 1u);

  // ...at exactly `expires == now` it has lived its full TTL and is gone.
  sim_.run_until(510);
  auto refetched =
      client.resolve(root_, CompoundName::relative("local/data.txt"));
  ASSERT_TRUE(refetched.is_ok());
  EXPECT_EQ(refetched.value(), data_);
  StatsSnapshot stats = client.snapshot();
  EXPECT_EQ(stats["cache_hits"], 1u);
  EXPECT_EQ(stats["cache_misses"], 2u);
}

TEST_F(LeaseTest, NegativeEntryIsInvalidatedByEpochBumpPush) {
  ResolverClientConfig config = lease_config();
  config.negative_cache_ttl = 10000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  auto miss = client.resolve(root_, CompoundName::relative("shared/proj/ghost"));
  ASSERT_FALSE(miss.is_ok());
  // Error answers are leased too: the authority where the lookup failed
  // stamped the reply, so the NOT_FOUND is a promise about proj's current
  // bindings.
  EXPECT_EQ(service_.snapshot()["leases_granted"], 1u);
  ASSERT_FALSE(
      client.resolve(root_, CompoundName::relative("shared/proj/ghost"))
          .is_ok());
  EXPECT_EQ(client.snapshot()["negative_hits"], 1u);

  // Creating the file bumps proj's rebind epoch; the publish pushes the
  // callback and the cached NOT_FOUND dies with it.
  auto created = fs_.create_file(proj_, Name("ghost"), "g");
  ASSERT_TRUE(created.is_ok());
  service_.publish_update(proj_);
  sim_.run();
  EXPECT_EQ(client.snapshot()["invalidates_received"], 1u);

  auto found =
      client.resolve(root_, CompoundName::relative("shared/proj/ghost"));
  ASSERT_TRUE(found.is_ok()) << found.status();
  EXPECT_EQ(found.value(), created.value());
  EXPECT_EQ(client.snapshot()["negative_hits"], 1u);  // no third stale serve
}

TEST_F(LeaseTest, InvalidateArrivingWithSameTickProbeWinsTheRace) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        lease_config());
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());

  // At t=1000 the authority rebinds and pushes; the push lands at t=1050.
  // A probe issued at exactly t=1050 — scheduled *after* the delivery was
  // enqueued — must see the invalidate's effect, not the dying entry:
  // same-tick events run in schedule order, and the transport enqueued
  // the delivery first.
  EntityId new_readme;
  Result<EntityId> probed = internal_error("probe never ran");
  sim_.schedule_at(1000, [&] {
    new_readme = rebind_readme("v2");
    service_.publish_update(proj_);
    sim_.schedule_at(1000 + kLanOneWay, [&] {
      client.resolve_async(root_, readme_name(),
                           [&](const Result<EntityId>& r) { probed = r; });
    });
  });
  sim_.run();

  ASSERT_TRUE(probed.is_ok()) << probed.status();
  EXPECT_EQ(probed.value(), new_readme);
  StatsSnapshot stats = client.snapshot();
  EXPECT_EQ(stats["invalidates_received"], 1u);
  EXPECT_EQ(stats["cache_hits"], 0u);
  EXPECT_EQ(stats["cache_misses"], 2u);
}

TEST_F(LeaseTest, SeededReorderWindowDelaysButConverges) {
  // A deterministic reorder window jitters every delivery (including the
  // kInvalidate push); coherence must survive reordering — the push is an
  // epoch announcement, not a sequenced stream.
  faults_.add_reorder_window(0, 100000, /*max_extra=*/40, /*seed=*/7);
  ResolverClientConfig config = lease_config();
  config.retry.request_timeout = 500;
  config.retry.retries = 2;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  ASSERT_TRUE(client.resolve(root_, readme_name()).is_ok());

  EntityId new_readme = rebind_readme("v2");
  service_.publish_update(proj_);
  sim_.run();
  EXPECT_EQ(client.snapshot()["invalidates_received"], 1u);

  auto fresh = client.resolve(root_, readme_name());
  ASSERT_TRUE(fresh.is_ok()) << fresh.status();
  EXPECT_EQ(fresh.value(), new_readme);
  EXPECT_GT(transport_.metrics().counter_value("transport.fault.delays"), 0u);
}

// --- Replication interplay ---------------------------------------------------

TEST(LeaseReplicationTest, PrimaryOwnsInvalidationSecondariesHoldNoLeases) {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  Transport transport(sim, net);
  AuthorityMap homes;
  NameService service(graph, net, transport, homes);

  NetworkId lan = net.add_network("lan");
  MachineId m1 = net.add_machine(lan, "m1");
  MachineId m2 = net.add_machine(lan, "m2");
  MachineId m3 = net.add_machine(lan, "m3");
  EntityId root = fs.make_root("root");
  EntityId shared = fs.make_root("shared");
  ASSERT_TRUE(fs.create_file_at(shared, "proj/readme", "v1").is_ok());
  ASSERT_TRUE(fs.attach(root, Name("shared"), shared).is_ok());
  homes.set_replicas_subtree(graph, shared, {m2, m3});
  homes.set_home_subtree(graph, root, m1);
  service.add_server(m1);
  service.add_server(m2);
  service.add_server(m3);
  Context pctx = FileSystem::make_process_context(root, root);
  EntityId proj = fs.resolve_path(pctx, "/shared/proj").entity;
  ASSERT_TRUE(proj.valid());
  for (EntityId ctx : homes.replicated_contexts()) service.publish_update(ctx);
  sim.run();

  ResolverClientConfig config;
  config.cache_ttl = 10000;
  config.lease_coherence = true;
  ResolverClient client(graph, net, transport, sim, service, m1, "c", config);
  ASSERT_TRUE(
      client.resolve(root, CompoundName::relative("shared/proj/readme"))
          .is_ok());
  // The referral chase answered at the primary; only it holds the promise.
  EXPECT_EQ(service.snapshot()["leases_granted"], 1u);
  EXPECT_EQ(service.lease_count(m2), 1u);
  EXPECT_EQ(service.lease_count(m3), 0u);

  // A rebind publishes both ways from the primary: the snapshot to the
  // secondary and the callback to the lease holder.
  ASSERT_TRUE(fs.unlink(proj, Name("readme")).is_ok());
  auto created = fs.create_file(proj, Name("readme"), "v2");
  ASSERT_TRUE(created.is_ok());
  service.publish_update(proj);
  sim.run();
  StatsSnapshot server = service.snapshot();
  EXPECT_EQ(server["invalidates_pushed"], 1u);
  EXPECT_GE(server["updates_applied"], 1u);
  EXPECT_EQ(*service.replica_epoch(m3, proj), graph.rebind_epoch(proj));
  EXPECT_EQ(client.snapshot()["invalidates_received"], 1u);

  auto fresh =
      client.resolve(root, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(fresh.is_ok()) << fresh.status();
  EXPECT_EQ(fresh.value(), created.value());
}

}  // namespace
}  // namespace namecoh
