// Tests for the logger: levels, sinks, scoped levels, macro laziness.
#include <gtest/gtest.h>

#include <vector>

#include "util/log.hpp"

namespace namecoh {
namespace {

struct CapturedLog {
  std::vector<std::pair<LogLevel, std::string>> lines;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(
        [this](LogLevel level, std::string_view message) {
          captured_.lines.emplace_back(level, std::string(message));
        });
    previous_level_ = Logger::instance().level();
  }
  void TearDown() override {
    Logger::instance().reset_sink();
    Logger::instance().set_level(previous_level_);
  }

  CapturedLog captured_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::kWarn);
  NAMECOH_DEBUG("hidden");
  NAMECOH_INFO("hidden too");
  NAMECOH_WARN("visible");
  NAMECOH_ERROR("also visible");
  ASSERT_EQ(captured_.lines.size(), 2u);
  EXPECT_EQ(captured_.lines[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_.lines[0].second, "visible");
  EXPECT_EQ(captured_.lines[1].first, LogLevel::kError);
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  NAMECOH_ERROR("nope");
  EXPECT_TRUE(captured_.lines.empty());
}

TEST_F(LogTest, MessageStreamsCompose) {
  Logger::instance().set_level(LogLevel::kTrace);
  int x = 42;
  NAMECOH_TRACE("value=" << x << "!");
  ASSERT_EQ(captured_.lines.size(), 1u);
  EXPECT_EQ(captured_.lines[0].second, "value=42!");
}

TEST_F(LogTest, DisabledLevelsDoNotEvaluate) {
  // The macro must not evaluate its expression when filtered out.
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  NAMECOH_DEBUG(expensive());
  EXPECT_EQ(evaluations, 0);
  NAMECOH_ERROR(expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, ScopedLevelRestores) {
  Logger::instance().set_level(LogLevel::kError);
  {
    ScopedLogLevel scoped(LogLevel::kTrace);
    EXPECT_EQ(Logger::instance().level(), LogLevel::kTrace);
    NAMECOH_DEBUG("inside");
  }
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
  NAMECOH_DEBUG("outside");
  ASSERT_EQ(captured_.lines.size(), 1u);
  EXPECT_EQ(captured_.lines[0].second, "inside");
}

TEST_F(LogTest, EnabledPredicate) {
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST(LogNames, Stable) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace namecoh
