// Tests for the coherence analyzer: verdicts, strict vs weak coherence,
// degree reports, global names, probe construction.
#include <gtest/gtest.h>

#include "coherence/coherence.hpp"
#include "fs/file_system.hpp"

namespace namecoh {
namespace {

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest() : fs_(graph_), analyzer_(graph_) {
    // Two machine trees with a mix of shared, conflicting and unique names.
    m1_ = fs_.make_root("m1");
    m2_ = fs_.make_root("m2");
    shared_ = fs_.make_root("shared");
    // Conflicting: /etc/passwd exists on both, different files.
    NAMECOH_CHECK(fs_.create_file_at(m1_, "etc/passwd", "m1").is_ok(), "");
    NAMECOH_CHECK(fs_.create_file_at(m2_, "etc/passwd", "m2").is_ok(), "");
    // Unique: /only1 on m1.
    NAMECOH_CHECK(fs_.create_file_at(m1_, "only1", "u1").is_ok(), "");
    // Shared subtree attached on both as /vice.
    NAMECOH_CHECK(fs_.create_file_at(shared_, "lib/common", "c").is_ok(), "");
    NAMECOH_CHECK(fs_.attach(m1_, Name("vice"), shared_).is_ok(), "");
    NAMECOH_CHECK(fs_.attach(m2_, Name("vice"), shared_).is_ok(), "");
    // Replicated command /bin/cc (weakly coherent).
    auto cc1 = fs_.create_file_at(m1_, "bin/cc", "cc");
    NAMECOH_CHECK(cc1.is_ok(), "");
    NAMECOH_CHECK(fs_.mkdir_p(m2_, "bin").is_ok(), "");
    auto bin2 = fs_.mkdir_p(m2_, "bin");
    auto cc2 = fs_.replicate_file(cc1.value(), bin2.value(), Name("cc"));
    NAMECOH_CHECK(cc2.is_ok(), "");

    ctx1_ = graph_.add_context_object("ctx1");
    graph_.context(ctx1_) = FileSystem::make_process_context(m1_, m1_);
    ctx2_ = graph_.add_context_object("ctx2");
    graph_.context(ctx2_) = FileSystem::make_process_context(m2_, m2_);
  }

  NamingGraph graph_;
  FileSystem fs_;
  CoherenceAnalyzer analyzer_;
  EntityId m1_, m2_, shared_, ctx1_, ctx2_;
};

TEST_F(CoherenceTest, VerdictSameEntity) {
  EXPECT_EQ(analyzer_.probe(ctx1_, ctx2_, CompoundName::path("/vice/lib/common")),
            ProbeVerdict::kSameEntity);
}

TEST_F(CoherenceTest, VerdictDifferent) {
  EXPECT_EQ(analyzer_.probe(ctx1_, ctx2_, CompoundName::path("/etc/passwd")),
            ProbeVerdict::kDifferent);
}

TEST_F(CoherenceTest, VerdictWeakReplicas) {
  EXPECT_EQ(analyzer_.probe(ctx1_, ctx2_, CompoundName::path("/bin/cc")),
            ProbeVerdict::kWeakReplicas);
}

TEST_F(CoherenceTest, VerdictOneUnresolved) {
  EXPECT_EQ(analyzer_.probe(ctx1_, ctx2_, CompoundName::path("/only1")),
            ProbeVerdict::kOneUnresolved);
}

TEST_F(CoherenceTest, VerdictBothUnresolved) {
  EXPECT_EQ(analyzer_.probe(ctx1_, ctx2_, CompoundName::path("/ghost")),
            ProbeVerdict::kBothUnresolved);
}

TEST_F(CoherenceTest, VerdictCoherentMatrix) {
  EXPECT_TRUE(verdict_coherent(ProbeVerdict::kSameEntity,
                               CoherenceMode::kStrict));
  EXPECT_TRUE(verdict_coherent(ProbeVerdict::kSameEntity,
                               CoherenceMode::kWeak));
  EXPECT_FALSE(verdict_coherent(ProbeVerdict::kWeakReplicas,
                                CoherenceMode::kStrict));
  EXPECT_TRUE(verdict_coherent(ProbeVerdict::kWeakReplicas,
                               CoherenceMode::kWeak));
  for (ProbeVerdict v : {ProbeVerdict::kDifferent,
                         ProbeVerdict::kOneUnresolved,
                         ProbeVerdict::kBothUnresolved}) {
    EXPECT_FALSE(verdict_coherent(v, CoherenceMode::kStrict));
    EXPECT_FALSE(verdict_coherent(v, CoherenceMode::kWeak));
  }
}

TEST_F(CoherenceTest, CoherentForConvenience) {
  EXPECT_TRUE(analyzer_.coherent_for(ctx1_, ctx2_,
                                     CompoundName::path("/vice/lib/common"),
                                     CoherenceMode::kStrict));
  EXPECT_FALSE(analyzer_.coherent_for(ctx1_, ctx2_,
                                      CompoundName::path("/bin/cc"),
                                      CoherenceMode::kStrict));
  EXPECT_TRUE(analyzer_.coherent_for(ctx1_, ctx2_,
                                     CompoundName::path("/bin/cc"),
                                     CoherenceMode::kWeak));
}

TEST_F(CoherenceTest, DegreeReportAggregates) {
  std::vector<CompoundName> probes = {
      CompoundName::path("/vice/lib/common"),  // same
      CompoundName::path("/etc/passwd"),       // different
      CompoundName::path("/bin/cc"),           // weak
      CompoundName::path("/only1"),            // one-unresolved
  };
  DegreeReport report = analyzer_.degree(ctx1_, ctx2_, probes);
  EXPECT_EQ(report.strict.trials(), 4u);
  EXPECT_EQ(report.strict.successes(), 1u);
  EXPECT_EQ(report.weak.successes(), 2u);
  EXPECT_EQ(report.verdicts.get("same-entity"), 1u);
  EXPECT_EQ(report.verdicts.get("different"), 1u);
  EXPECT_EQ(report.verdicts.get("weak-replicas"), 1u);
  EXPECT_EQ(report.verdicts.get("one-unresolved"), 1u);
}

TEST_F(CoherenceTest, DegreeReportMerge) {
  DegreeReport a, b;
  a.add(ProbeVerdict::kSameEntity);
  b.add(ProbeVerdict::kDifferent);
  b.add(ProbeVerdict::kWeakReplicas);
  a.merge(b);
  EXPECT_EQ(a.strict.trials(), 3u);
  EXPECT_EQ(a.strict.successes(), 1u);
  EXPECT_EQ(a.weak.successes(), 2u);
  EXPECT_EQ(a.verdicts.total(), 3u);
}

TEST_F(CoherenceTest, SameContextIsFullyCoherent) {
  auto probes = absolutize(probes_from_dir(graph_, m1_));
  DegreeReport report = analyzer_.degree(ctx1_, ctx1_, probes);
  EXPECT_GT(report.strict.trials(), 0u);
  EXPECT_DOUBLE_EQ(report.strict.fraction(), 1.0);
}

TEST_F(CoherenceTest, GlobalNames) {
  std::vector<EntityId> contexts = {ctx1_, ctx2_};
  EXPECT_TRUE(analyzer_.is_global_name(
      contexts, CompoundName::path("/vice/lib/common"),
      CoherenceMode::kStrict));
  EXPECT_FALSE(analyzer_.is_global_name(
      contexts, CompoundName::path("/etc/passwd"), CoherenceMode::kStrict));
  EXPECT_FALSE(analyzer_.is_global_name(
      contexts, CompoundName::path("/ghost"), CoherenceMode::kStrict));
  EXPECT_TRUE(analyzer_.is_global_name(contexts,
                                       CompoundName::path("/bin/cc"),
                                       CoherenceMode::kWeak));
  EXPECT_FALSE(analyzer_.is_global_name({}, CompoundName::path("/x"),
                                        CoherenceMode::kStrict));
}

TEST_F(CoherenceTest, GlobalFraction) {
  std::vector<EntityId> contexts = {ctx1_, ctx2_};
  std::vector<CompoundName> probes = {
      CompoundName::path("/vice/lib/common"),
      CompoundName::path("/etc/passwd"),
      CompoundName::path("/bin/cc"),
  };
  FractionCounter strict =
      analyzer_.global_fraction(contexts, probes, CoherenceMode::kStrict);
  EXPECT_EQ(strict.trials(), 3u);
  EXPECT_EQ(strict.successes(), 1u);
  FractionCounter weak =
      analyzer_.global_fraction(contexts, probes, CoherenceMode::kWeak);
  EXPECT_EQ(weak.successes(), 2u);
}

TEST_F(CoherenceTest, PairwiseDegreeCoversAllPairs) {
  EntityId ctx3 = graph_.add_context_object("ctx3");
  graph_.context(ctx3) = FileSystem::make_process_context(m1_, m1_);
  std::vector<EntityId> contexts = {ctx1_, ctx2_, ctx3};
  std::vector<CompoundName> probes = {CompoundName::path("/etc/passwd")};
  DegreeReport report = analyzer_.pairwise_degree(contexts, probes);
  // 3 unordered pairs × 1 probe.
  EXPECT_EQ(report.strict.trials(), 3u);
  // ctx1-ctx3 agree (same root); the two pairs with ctx2 disagree.
  EXPECT_EQ(report.strict.successes(), 1u);
}

TEST_F(CoherenceTest, ProbesFromDirEnumerates) {
  auto probes = probes_from_dir(graph_, m1_);
  EXPECT_FALSE(probes.empty());
  // Contains the expected relative names.
  auto has = [&](const char* p) {
    return std::find(probes.begin(), probes.end(),
                     CompoundName::relative(p)) != probes.end();
  };
  EXPECT_TRUE(has("etc/passwd"));
  EXPECT_TRUE(has("only1"));
  EXPECT_TRUE(has("bin/cc"));
  EXPECT_TRUE(has("vice/lib/common"));
}

TEST_F(CoherenceTest, AbsolutizePrependsRoot) {
  auto rel = probes_from_dir(graph_, m1_, /*max_depth=*/1);
  auto abs = absolutize(rel);
  ASSERT_EQ(abs.size(), rel.size());
  for (std::size_t i = 0; i < abs.size(); ++i) {
    EXPECT_TRUE(abs[i].is_absolute());
    EXPECT_EQ(abs[i].size(), rel[i].size() + 1);
  }
}

TEST_F(CoherenceTest, MergeProbesDeduplicates) {
  std::vector<std::vector<CompoundName>> sets = {
      {CompoundName::path("/a"), CompoundName::path("/b")},
      {CompoundName::path("/b"), CompoundName::path("/c")},
  };
  auto merged = merge_probes(sets);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], CompoundName::path("/a"));
  EXPECT_EQ(merged[1], CompoundName::path("/b"));
  EXPECT_EQ(merged[2], CompoundName::path("/c"));
}

TEST_F(CoherenceTest, DegreeUnderRuleMatchesFig2) {
  // Build activities with contexts and compare rules on an exchanged name.
  EntityId sender = graph_.add_activity("sender");
  EntityId receiver = graph_.add_activity("receiver");
  ClosureTable table;
  table.set_activity_context(sender, ctx1_);
  table.set_activity_context(receiver, ctx2_);
  std::vector<CompoundName> probes = {CompoundName::path("/etc/passwd"),
                                      CompoundName::path("/vice/lib/common"),
                                      CompoundName::path("/only1")};
  // Side A: the sender resolving its own (internal) name.
  Circumstance side_a = Circumstance::internal(sender);
  // Side B: the receiver resolving the name it received from the sender.
  Circumstance side_b = Circumstance::from_message(receiver, sender);

  DegreeReport with_receiver_rule = analyzer_.degree_under_rule(
      table, ByReceiverRule{}, side_a, side_b, probes);
  DegreeReport with_sender_rule = analyzer_.degree_under_rule(
      table, BySenderRule{}, side_a, side_b, probes);

  // R(receiver): only the shared /vice name is coherent (1 of 3).
  EXPECT_EQ(with_receiver_rule.strict.successes(), 1u);
  // R(sender): all names coherent (resolved in the sender's context on
  // both sides).
  EXPECT_EQ(with_sender_rule.strict.successes(), 3u);
}

TEST_F(CoherenceTest, ClassifyListsEveryProbe) {
  std::vector<CompoundName> probes = {
      CompoundName::path("/vice/lib/common"),
      CompoundName::path("/etc/passwd"),
      CompoundName::path("/bin/cc"),
      CompoundName::path("/only1"),
  };
  auto classified = analyzer_.classify(ctx1_, ctx2_, probes);
  ASSERT_EQ(classified.size(), probes.size());
  EXPECT_EQ(classified[0].verdict, ProbeVerdict::kSameEntity);
  EXPECT_EQ(classified[1].verdict, ProbeVerdict::kDifferent);
  EXPECT_EQ(classified[2].verdict, ProbeVerdict::kWeakReplicas);
  EXPECT_EQ(classified[3].verdict, ProbeVerdict::kOneUnresolved);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(classified[i].name, probes[i]);
  }
}

TEST_F(CoherenceTest, ProbesWithVerdictFilters) {
  std::vector<CompoundName> probes = {
      CompoundName::path("/vice/lib/common"),
      CompoundName::path("/etc/passwd"),
      CompoundName::path("/bin/cc"),
  };
  auto conflicts = analyzer_.probes_with_verdict(
      ctx1_, ctx2_, probes, ProbeVerdict::kDifferent);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], CompoundName::path("/etc/passwd"));
  EXPECT_TRUE(analyzer_.probes_with_verdict(ctx1_, ctx2_, probes,
                                            ProbeVerdict::kBothUnresolved)
                  .empty());
}

TEST(CoherenceNames, Stable) {
  EXPECT_EQ(coherence_mode_name(CoherenceMode::kStrict), "strict");
  EXPECT_EQ(coherence_mode_name(CoherenceMode::kWeak), "weak");
  EXPECT_EQ(probe_verdict_name(ProbeVerdict::kSameEntity), "same-entity");
  EXPECT_EQ(probe_verdict_name(ProbeVerdict::kBothUnresolved),
            "both-unresolved");
}

}  // namespace
}  // namespace namecoh
