// Tests for subtree snapshots: export/import round trips across graphs,
// boundary cutting, embedded-name preservation, malformed-input rejection.
#include <gtest/gtest.h>

#include "embed/embedded.hpp"
#include "fs/snapshot.hpp"
#include "workload/doc_gen.hpp"

namespace namecoh {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : fs_(graph_) { root_ = fs_.make_root("origin"); }

  NamingGraph graph_;
  FileSystem fs_;
  EntityId root_;
};

TEST_F(SnapshotTest, RoundTripWithinSameGraph) {
  ASSERT_TRUE(fs_.create_file_at(root_, "doc/a.txt", "alpha").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "doc/sub/b.txt", "beta").is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId doc = fs_.resolve_path(ctx, "/doc").entity;

  auto snapshot = export_subtree(graph_, doc);
  ASSERT_TRUE(snapshot.is_ok());
  auto report = import_snapshot(fs_, root_, Name("doc2"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().files, 2u);
  EXPECT_EQ(report.value().directories, 2u);  // doc + sub

  Resolution a = fs_.resolve_path(ctx, "/doc2/a.txt");
  Resolution b = fs_.resolve_path(ctx, "/doc2/sub/b.txt");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(graph_.data(a.entity), "alpha");
  EXPECT_EQ(graph_.data(b.entity), "beta");
  // Fresh entities, not aliases.
  EXPECT_NE(a.entity, fs_.resolve_path(ctx, "/doc/a.txt").entity);
}

TEST_F(SnapshotTest, RoundTripAcrossGraphs) {
  // The §5.3 scenario: the subtree travels to another autonomous system as
  // bytes.
  ASSERT_TRUE(fs_.create_file_at(root_, "pkg/bin/tool", "#!tool").is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId pkg = fs_.resolve_path(ctx, "/pkg").entity;
  auto snapshot = export_subtree(graph_, pkg);
  ASSERT_TRUE(snapshot.is_ok());

  NamingGraph other_graph;
  FileSystem other_fs(other_graph);
  EntityId other_root = other_fs.make_root("elsewhere");
  auto report =
      import_snapshot(other_fs, other_root, Name("pkg"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  Context other_ctx =
      FileSystem::make_process_context(other_root, other_root);
  Resolution tool = other_fs.resolve_path(other_ctx, "/pkg/bin/tool");
  ASSERT_TRUE(tool.ok());
  EXPECT_EQ(other_graph.data(tool.entity), "#!tool");
  // '..' of the imported root points into the destination.
  EXPECT_EQ(other_fs.parent_of(report.value().root).value(), other_root);
}

TEST_F(SnapshotTest, PreservesEmbeddedNamesAndMeaning) {
  Document doc = make_document(fs_, root_, Name("book"), DocSpec{});
  auto snapshot = export_subtree(graph_, doc.subtree);
  ASSERT_TRUE(snapshot.is_ok());

  NamingGraph other_graph;
  FileSystem other_fs(other_graph);
  EntityId other_root = other_fs.make_root("colleague");
  auto report =
      import_snapshot(other_fs, other_root, Name("book"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().embedded_names, doc.refs);

  // The imported document assembles fully under R(file): Fig. 6 holds
  // across the administrative boundary.
  Context other_ctx =
      FileSystem::make_process_context(other_root, other_root);
  Resolution opened = other_fs.resolve_path(other_ctx, "/book/book.tex");
  ASSERT_TRUE(opened.ok());
  DocumentAssembler assembler(other_graph);
  AssembleOptions algol;
  algol.rule = EmbedRule::kAlgolScope;
  DocumentMeaning meaning =
      assembler.assemble(opened.entity, opened.trail.back(), algol);
  EXPECT_TRUE(meaning.fully_resolved());
  EXPECT_EQ(meaning.refs.size(), doc.refs);
}

TEST_F(SnapshotTest, PreservesInternalSharingAndCycles) {
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  auto shared = fs_.create_file(dir.value(), Name("shared"), "s");
  ASSERT_TRUE(shared.is_ok());
  ASSERT_TRUE(fs_.link(dir.value(), Name("alias"), shared.value()).is_ok());
  auto inner = fs_.mkdir(dir.value(), Name("inner"));
  ASSERT_TRUE(inner.is_ok());
  ASSERT_TRUE(fs_.link(inner.value(), Name("back"), dir.value()).is_ok());

  auto snapshot = export_subtree(graph_, dir.value());
  ASSERT_TRUE(snapshot.is_ok());
  auto report = import_snapshot(fs_, root_, Name("d2"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EXPECT_EQ(fs_.resolve_path(ctx, "/d2/shared").entity,
            fs_.resolve_path(ctx, "/d2/alias").entity);
  EXPECT_EQ(fs_.resolve_path(ctx, "/d2/inner/back").entity,
            report.value().root);
}

TEST_F(SnapshotTest, BoundaryCutsSharedAttachments) {
  // A site tree with a shared tree attached must not drag the shared tree
  // along in its snapshot.
  EntityId shared_tree = fs_.make_root("vice");
  ASSERT_TRUE(fs_.create_file_at(shared_tree, "huge", "…").is_ok());
  ASSERT_TRUE(fs_.attach(root_, Name("vice"), shared_tree).is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "mine", "local").is_ok());

  auto snapshot = export_subtree(graph_, root_, {shared_tree});
  ASSERT_TRUE(snapshot.is_ok());
  EXPECT_EQ(snapshot.value().find("huge"), std::string::npos);

  NamingGraph other_graph;
  FileSystem other_fs(other_graph);
  EntityId other_root = other_fs.make_root("dst");
  auto report =
      import_snapshot(other_fs, other_root, Name("site"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().external_refs_cut, 1u);
  Context ctx = FileSystem::make_process_context(other_root, other_root);
  EXPECT_TRUE(other_fs.resolve_path(ctx, "/site/mine").ok());
  EXPECT_FALSE(other_fs.resolve_path(ctx, "/site/vice").ok());
}

TEST_F(SnapshotTest, ActivitiesNeverTravel) {
  EntityId proc = graph_.add_activity("daemon");
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  ASSERT_TRUE(graph_.bind(dir.value(), Name("daemon"), proc).is_ok());
  auto snapshot = export_subtree(graph_, dir.value());
  ASSERT_TRUE(snapshot.is_ok());
  auto report = import_snapshot(fs_, root_, Name("d2"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().external_refs_cut, 1u);
  Context ctx = FileSystem::make_process_context(root_, root_);
  EXPECT_FALSE(fs_.resolve_path(ctx, "/d2/daemon").ok());
}

TEST_F(SnapshotTest, BinaryContentSurvives) {
  std::string payload("\0\x01\xff\ttab\nnewline", 15);
  auto dir = fs_.mkdir(root_, Name("d"));
  ASSERT_TRUE(dir.is_ok());
  ASSERT_TRUE(fs_.create_file(dir.value(), Name("bin"), payload).is_ok());
  auto snapshot = export_subtree(graph_, dir.value());
  ASSERT_TRUE(snapshot.is_ok());
  auto report = import_snapshot(fs_, root_, Name("d2"), snapshot.value());
  ASSERT_TRUE(report.is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EXPECT_EQ(graph_.data(fs_.resolve_path(ctx, "/d2/bin").entity), payload);
}

TEST_F(SnapshotTest, ExportValidation) {
  EntityId file = graph_.add_data_object("f");
  EXPECT_FALSE(export_subtree(graph_, file).is_ok());
  EXPECT_FALSE(export_subtree(graph_, root_, {root_}).is_ok());
}

TEST_F(SnapshotTest, ImportValidation) {
  EXPECT_FALSE(import_snapshot(fs_, root_, Name("x"), "garbage").is_ok());
  EXPECT_FALSE(
      import_snapshot(fs_, root_, Name("x"), "namecoh-snapshot v1 0\n")
          .is_ok());  // no root record
  // Name collision.
  ASSERT_TRUE(fs_.mkdir(root_, Name("taken")).is_ok());
  auto dir = fs_.mkdir(root_, Name("src"));
  ASSERT_TRUE(dir.is_ok());
  auto snapshot = export_subtree(graph_, dir.value());
  ASSERT_TRUE(snapshot.is_ok());
  EXPECT_EQ(
      import_snapshot(fs_, root_, Name("taken"), snapshot.value()).code(),
      StatusCode::kAlreadyExists);
  // Destination must be a directory.
  EntityId file = graph_.add_data_object("f");
  EXPECT_EQ(import_snapshot(fs_, file, Name("x"), snapshot.value()).code(),
            StatusCode::kNotAContext);
}

TEST_F(SnapshotTest, MalformedRecordsRejected) {
  for (const char* bad : {
           "namecoh-snapshot v1 0\nD\t0\n",            // missing label
           "namecoh-snapshot v1 0\nQ\t0\tzz\nR\t0\n",  // unknown kind
           "namecoh-snapshot v1 0\nD\t0\t-\nE\t0\tzz\t5\nR\t0\n",  // bad idx
           "namecoh-snapshot v1 0\nF\t0\t-\tzzz\nR\t0\n",  // odd hex
       }) {
    EXPECT_FALSE(import_snapshot(fs_, root_, Name("x"), bad).is_ok()) << bad;
  }
}

TEST_F(SnapshotTest, SnapshotIsDeterministic) {
  ASSERT_TRUE(fs_.create_file_at(root_, "d/a", "1").is_ok());
  ASSERT_TRUE(fs_.create_file_at(root_, "d/b", "2").is_ok());
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId dir = fs_.resolve_path(ctx, "/d").entity;
  auto s1 = export_subtree(graph_, dir);
  auto s2 = export_subtree(graph_, dir);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s1.value(), s2.value());
}

}  // namespace
}  // namespace namecoh
