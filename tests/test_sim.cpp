// Tests for the discrete-event simulator: ordering, determinism,
// cancellation, and run_until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace namecoh {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, FiresInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_in(5, [&] {
    times.push_back(sim.now());
    sim.schedule_in(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 10}));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_at(10, std::function<void()>{}),
               PreconditionError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // idempotent: already cancelled
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  EventId id = sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(EventId::invalid()));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(100), 0u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunMaxEventsBudget) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i + 1, [&] { ++fired; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 4u);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, ResetClearsState) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.schedule_at(5, [] {});
  sim.run(1);
  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, StaleEventIdAfterResetCannotCancelNewEvents) {
  Simulator sim;
  EventId old_id = sim.schedule_at(10, [] {});
  sim.reset();
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(old_id));  // ids are never reused
  sim.run();
  EXPECT_EQ(fired, 1);
}

// Regression: run_until's deadline check used to look at the raw queue
// head. A *cancelled* event before the deadline would admit fire_next(),
// which discarded it and then ran the next pending event even when that
// event lay beyond the deadline.
TEST(Simulator, RunUntilIgnoresCancelledHeadBeforeDeadline) {
  Simulator sim;
  int fired = 0;
  EventId a = sim.schedule_at(5, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.run_until(10), 0u);  // nothing pending at <= 10
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.run(), 1u);  // the t=20 event is still intact
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20u);
}

TEST(Simulator, RunUntilFiresPendingEventBehindCancelledHead) {
  Simulator sim;
  int fired = 0;
  EventId a = sim.schedule_at(5, [&] { fired += 100; });
  sim.schedule_at(8, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.run_until(10), 1u);  // the t=8 event, not the cancelled t=5
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RunWhileStopsWhenPredicateTurnsFalse) {
  Simulator sim;
  int fired = 0;
  bool done = false;
  sim.schedule_at(5, [&] { ++fired; });
  sim.schedule_at(10, [&] {
    ++fired;
    done = true;
  });
  sim.schedule_at(20, [&] { ++fired; });  // must NOT fire
  EXPECT_EQ(sim.run_while([&] { return !done; }), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 10u);
  // The untouched t=20 event is still pending for a later drive.
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunWhileChecksPredicateBeforeFirstEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5, [&] { ++fired; });
  EXPECT_EQ(sim.run_while([] { return false; }), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulator, RunWhileStopsOnEmptyQueueEvenIfPredicateHolds) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5, [&] { ++fired; });
  EXPECT_EQ(sim.run_while([] { return true; }), 1u);
  EXPECT_EQ(fired, 1);
}

// Property: N events at random distinct times fire in sorted order.
class SimOrdering : public ::testing::TestWithParam<int> {};

TEST_P(SimOrdering, AlwaysSorted) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  // Deterministic pseudo-random times from the seed parameter.
  std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
  for (int i = 0; i < 50; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    SimTime t = x % 1000;
    sim.schedule_at(t, [&fire_times, &sim] { fire_times.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
  EXPECT_EQ(fire_times.size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOrdering, ::testing::Range(1, 11));

}  // namespace
}  // namespace namecoh
