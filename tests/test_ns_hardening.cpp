// Hardening tests for the distributed name service: correlation-id
// reply matching, duplicate-request suppression, the empty-path reply
// guarantee, timed exponential-backoff retries, and the bounded
// invalidation-aware resolver cache (LRU + negative entries + rebind
// epochs).
#include <gtest/gtest.h>

#include <algorithm>

#include "fs/file_system.hpp"
#include "ns/name_service.hpp"

namespace namecoh {
namespace {

class NsHardeningTest : public ::testing::Test {
 protected:
  NsHardeningTest()
      : fs_(graph_), transport_(sim_, net_),
        service_(graph_, net_, transport_, homes_) {
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    m3_ = net_.add_machine(lan, "m3");
    root_ = fs_.make_root("m1-root");
    shared_ = fs_.make_root("shared");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file_at(root_, "local/data.txt", "local").is_ok());
    ASSERT_TRUE(fs_.create_file_at(root_, "local/other.txt", "other").is_ok());
    ASSERT_TRUE(
        fs_.create_file_at(shared_, "proj/readme", "shared readme").is_ok());
    ASSERT_TRUE(fs_.attach(root_, Name("shared"), shared_).is_ok());
    homes_.set_home_subtree(graph_, shared_, m2_);
    homes_.set_home_subtree(graph_, root_, m1_);
    server1_ = service_.add_server(m1_);
    server2_ = service_.add_server(m2_);
  }

  /// A bare endpoint that records every name-service reply it receives,
  /// for crafting raw wire messages (retransmissions, stale replies,
  /// malformed requests) that a well-behaved client would never send.
  struct WireProbe {
    WireProbe(Internetwork& net, Transport& transport, MachineId machine)
        : net_(net), transport_(transport),
          endpoint_(net.add_endpoint(machine, "probe")) {
      transport_.set_handler(endpoint_,
                             [this](EndpointId, const Message& message) {
                               if (message.type == NsWire::kResolveReply) {
                                 replies.push_back(message);
                               }
                             });
    }
    ~WireProbe() {
      transport_.clear_handler(endpoint_);
      (void)net_.remove_endpoint(endpoint_);
    }

    Pid pid_of(EndpointId target) const {
      return relativize(net_.location_of(target).value(),
                        net_.location_of(endpoint_).value());
    }

    Status send_request(EndpointId server, std::uint64_t corr, EntityId start,
                        std::string path) {
      Message request;
      request.type = NsWire::kResolveRequest;
      request.payload.add_u64(corr);
      request.payload.add_u64(start.value());
      request.payload.add_name(std::move(path));
      return transport_.send(endpoint_, pid_of(server), std::move(request));
    }

    Internetwork& net_;
    Transport& transport_;
    EndpointId endpoint_;
    std::vector<Message> replies;
  };

  EntityId rebind_local(const char* leaf, const char* contents) {
    Context ctx = FileSystem::make_process_context(root_, root_);
    EntityId local_dir = fs_.resolve_path(ctx, "/local").entity;
    EXPECT_TRUE(fs_.unlink(local_dir, Name(leaf)).is_ok());
    auto created = fs_.create_file(local_dir, Name(leaf), contents);
    EXPECT_TRUE(created.is_ok());
    return created.value();
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  AuthorityMap homes_;
  NameService service_;
  MachineId m1_, m2_, m3_;
  EntityId root_, shared_;
  EndpointId server1_, server2_;
};

// --- Satellite: the zero-component request must get an explicit reply ------

TEST_F(NsHardeningTest, EmptyPathRequestGetsExplicitAnswer) {
  // A request whose path holds zero components used to fall through the
  // walk loop without any reply, so the sender burned its entire retry
  // budget and reported a bogus "message lost" error. It now answers
  // explicitly (identity resolution) on the first and only attempt.
  WireProbe probe(net_, transport_, m1_);
  ASSERT_TRUE(probe.send_request(server1_, 777, root_, "").is_ok());
  sim_.run();
  ASSERT_EQ(probe.replies.size(), 1u);  // one request sufficed: no retries
  const Payload& reply = probe.replies[0].payload;
  EXPECT_EQ(reply.u64_at(0), 777u);                // correlation id echoed
  EXPECT_EQ(reply.u64_at(1), NsWire::kAnswer);
  EXPECT_EQ(reply.u64_at(2), root_.value());       // identity resolution
  EXPECT_EQ(service_.snapshot()["answers"], 1u);
}

TEST_F(NsHardeningTest, EmptyPathOnUnknownEntityGetsExplicitError) {
  WireProbe probe(net_, transport_, m1_);
  ASSERT_TRUE(
      probe.send_request(server1_, 778, EntityId(999999), "").is_ok());
  sim_.run();
  ASSERT_EQ(probe.replies.size(), 1u);
  EXPECT_EQ(probe.replies[0].payload.u64_at(1), NsWire::kError);
  EXPECT_EQ(service_.snapshot()["failures"], 1u);
}

TEST_F(NsHardeningTest, MalformedRequestIsIgnoredNotCrashed) {
  // Old two-field layout (no correlation id): not a valid request anymore.
  WireProbe probe(net_, transport_, m1_);
  Message request;
  request.type = NsWire::kResolveRequest;
  request.payload.add_u64(root_.value());
  request.payload.add_name("local");
  ASSERT_TRUE(
      transport_.send(probe.endpoint_, probe.pid_of(server1_), request)
          .is_ok());
  sim_.run();
  EXPECT_TRUE(probe.replies.empty());
  EXPECT_EQ(service_.snapshot()["requests"], 0u);
}

// --- Tentpole: duplicate requests answered but not double-counted ----------

TEST_F(NsHardeningTest, DuplicateRequestAnsweredButCountedOnce) {
  WireProbe probe(net_, transport_, m1_);
  ASSERT_TRUE(probe.send_request(server1_, 42, root_, "local").is_ok());
  ASSERT_TRUE(probe.send_request(server1_, 42, root_, "local").is_ok());
  sim_.run();
  // Both copies are answered — the first reply may have been lost, so the
  // server must re-reply — but the stats see one resolution.
  ASSERT_EQ(probe.replies.size(), 2u);
  EXPECT_EQ(probe.replies[0].payload.u64_at(1), NsWire::kAnswer);
  EXPECT_EQ(probe.replies[1].payload.u64_at(1), NsWire::kAnswer);
  EXPECT_EQ(service_.snapshot()["requests"], 1u);
  EXPECT_EQ(service_.snapshot()["duplicates"], 1u);
  EXPECT_EQ(service_.snapshot()["answers"], 1u);
}

// --- Tentpole: correlation ids reject delayed/stale replies ----------------

TEST_F(NsHardeningTest, StaleReplyRejectedByCorrelationId) {
  // Queue a forged "answer" to the client before it even asks, claiming
  // the name resolves to the shared tree. Pre-fix, the client's handler
  // accepted any kResolveReply while waiting and would have returned the
  // wrong entity; the correlation id now rejects it and the client waits
  // for the genuine answer.
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  WireProbe probe(net_, transport_, m1_);
  Message forged;
  forged.type = NsWire::kResolveReply;
  forged.payload.add_u64(12345);  // matches no outstanding attempt
  forged.payload.add_u64(NsWire::kAnswer);
  forged.payload.add_u64(shared_.value());  // the wrong entity
  forged.payload.add_name("");
  forged.payload.add_string("");
  forged.payload.add_pid(Pid::self());
  forged.payload.add_u64(NsWire::kNoEntity);
  forged.payload.add_u64(0);
  ASSERT_TRUE(
      transport_.send(probe.endpoint_, probe.pid_of(client.endpoint()),
                      std::move(forged))
          .is_ok());

  auto result = client.resolve(root_, CompoundName::relative("local/data.txt"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "local");  // not the forged entity
  EXPECT_EQ(client.snapshot()["stale_replies_dropped"], 1u);
}

// --- Tentpole: per-hop timeout + exponential backoff -----------------------

TEST_F(NsHardeningTest, TimeoutBackoffConsumesSimulatedTime) {
  TransportConfig lossy;
  lossy.drop_probability = 1.0;  // total blackout
  Transport drop_transport(sim_, net_, lossy);
  NameService lossy_service(graph_, net_, drop_transport, homes_);
  lossy_service.add_server(m1_);
  ResolverClientConfig config;
  config.retry.retries = 2;
  config.retry.request_timeout = 100;
  config.retry.backoff_multiplier = 2.0;
  ResolverClient client(graph_, net_, drop_transport, sim_, lossy_service,
                        m1_, "c", config);
  SimTime t0 = sim_.now();
  auto result = client.resolve(root_, CompoundName::relative("local"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kUnreachable);
  // Three attempts waited 100 + 200 + 400 ticks on the shared clock.
  EXPECT_EQ(sim_.now() - t0, 700u);
  EXPECT_EQ(client.snapshot()["messages_sent"], 3u);
  EXPECT_EQ(client.snapshot()["timeouts"], 3u);
  EXPECT_EQ(client.snapshot()["backoff_retries"], 2u);
  EXPECT_EQ(client.snapshot()["failures"], 1u);
}

TEST_F(NsHardeningTest, BackoffTimeoutRespectsCap) {
  TransportConfig lossy;
  lossy.drop_probability = 1.0;
  Transport drop_transport(sim_, net_, lossy);
  NameService lossy_service(graph_, net_, drop_transport, homes_);
  lossy_service.add_server(m1_);
  ResolverClientConfig config;
  config.retry.retries = 3;
  config.retry.request_timeout = 100;
  config.retry.backoff_multiplier = 2.0;
  config.retry.max_timeout = 150;
  ResolverClient client(graph_, net_, drop_transport, sim_, lossy_service,
                        m1_, "c", config);
  SimTime t0 = sim_.now();
  EXPECT_FALSE(client.resolve(root_, CompoundName::relative("local")).is_ok());
  // 100, then capped at 150 for the remaining three attempts.
  EXPECT_EQ(sim_.now() - t0, 100u + 150u + 150u + 150u);
}

// --- Satellite: referral chains under loss ---------------------------------

TEST_F(NsHardeningTest, ReferralChainSurvivesLossWithRetries) {
  // Three-hop authority chain: root (m1) -> shared (m2) -> deep (m3), with
  // a lossy transport. Each hop retries independently and the chain still
  // completes end-to-end.
  EntityId deep = fs_.make_root("deep");
  ASSERT_TRUE(fs_.create_file_at(deep, "leaf", "deep leaf").is_ok());
  ASSERT_TRUE(fs_.attach(shared_, Name("deep"), deep).is_ok());
  homes_.set_home_subtree(graph_, deep, m3_);

  TransportConfig lossy;
  lossy.drop_probability = 0.4;
  Transport drop_transport(sim_, net_, lossy, /*seed=*/424242);
  NameService lossy_service(graph_, net_, drop_transport, homes_);
  lossy_service.add_server(m1_);
  lossy_service.add_server(m2_);
  lossy_service.add_server(m3_);
  ResolverClientConfig config;
  config.retry.retries = 16;
  config.retry.request_timeout = 500;
  ResolverClient client(graph_, net_, drop_transport, sim_, lossy_service,
                        m1_, "c", config);
  auto result =
      client.resolve(root_, CompoundName::relative("shared/deep/leaf"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "deep leaf");
  EXPECT_EQ(client.snapshot()["referrals_followed"], 2u);
  // Loss actually happened: more sends than the loss-free 3, and every
  // resend was preceded by a timeout.
  EXPECT_GT(client.snapshot()["messages_sent"], 3u);
  EXPECT_EQ(client.snapshot()["backoff_retries"],
            client.snapshot()["messages_sent"] - 3u);
}

// --- Satellite: cache expiry at the exact TTL boundary ---------------------

TEST_F(NsHardeningTest, CacheExpiryAtExactBoundaryIsMiss) {
  ResolverClientConfig config;
  config.cache_ttl = 50;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName name = CompoundName::relative("local/data.txt");
  ASSERT_TRUE(client.resolve(root_, name).is_ok());
  SimTime stamped = sim_.now();  // entry expires at stamped + 50

  sim_.run_until(stamped + 49);
  ASSERT_TRUE(client.resolve(root_, name).is_ok());
  EXPECT_EQ(client.snapshot()["cache_hits"], 1u);  // one tick early: still alive

  sim_.run_until(stamped + 50);
  ASSERT_TRUE(client.resolve(root_, name).is_ok());
  EXPECT_EQ(client.snapshot()["cache_hits"], 1u);  // exactly at expiry: a miss
  EXPECT_EQ(client.snapshot()["cache_misses"], 2u);
}

// --- Tentpole: bounded LRU cache -------------------------------------------

TEST_F(NsHardeningTest, CacheNeverExceedsCapacityUnderChurn) {
  ResolverClientConfig config;
  config.cache_ttl = 1u << 30;
  config.cache_capacity = 4;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  std::vector<CompoundName> names;
  for (int i = 0; i < 16; ++i) {
    std::string path = "local/churn" + std::to_string(i);
    ASSERT_TRUE(fs_.create_file_at(root_, path, "x").is_ok());
    names.push_back(CompoundName::relative(path));
  }
  for (int round = 0; round < 3; ++round) {
    for (const auto& name : names) {
      ASSERT_TRUE(client.resolve(root_, name).is_ok());
      EXPECT_LE(client.cache_size(), config.cache_capacity);
    }
  }
  // 16 distinct names round-robin through 4 slots: every insert past the
  // first 4 evicts, and nothing ever hits.
  EXPECT_EQ(client.snapshot()["evictions"], 48u - 4u);
  EXPECT_EQ(client.snapshot()["cache_hits"], 0u);
  EXPECT_EQ(client.snapshot()["cache_misses"], 48u);
}

TEST_F(NsHardeningTest, LruKeepsRecentlyUsedEntries) {
  ResolverClientConfig config;
  config.cache_ttl = 1u << 30;
  config.cache_capacity = 2;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName a = CompoundName::relative("local/data.txt");
  CompoundName b = CompoundName::relative("local/other.txt");
  CompoundName c = CompoundName::relative("shared/proj/readme");
  ASSERT_TRUE(client.resolve(root_, a).is_ok());  // cache: [a]
  ASSERT_TRUE(client.resolve(root_, b).is_ok());  // cache: [b, a]
  ASSERT_TRUE(client.resolve(root_, a).is_ok());  // hit; cache: [a, b]
  ASSERT_TRUE(client.resolve(root_, c).is_ok());  // evicts b: [c, a]
  EXPECT_EQ(client.snapshot()["evictions"], 1u);
  std::uint64_t hits_before = client.snapshot()["cache_hits"];
  ASSERT_TRUE(client.resolve(root_, a).is_ok());  // a survived (recently used)
  EXPECT_EQ(client.snapshot()["cache_hits"], hits_before + 1);
  ASSERT_TRUE(client.resolve(root_, b).is_ok());  // b was the LRU victim
  EXPECT_EQ(client.snapshot()["cache_misses"], 4u);     // a, b, c, then b again
}

// --- Tentpole: negative caching --------------------------------------------

TEST_F(NsHardeningTest, NegativeCacheServesRepeatedFailures) {
  ResolverClientConfig config;
  config.negative_cache_ttl = 300;  // positive caching stays off
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName ghost = CompoundName::relative("local/ghost");
  auto first = client.resolve(root_, ghost);
  EXPECT_FALSE(first.is_ok());
  SimTime stamped = sim_.now();
  std::uint64_t sent = client.snapshot()["messages_sent"];

  auto second = client.resolve(root_, ghost);
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.code(), StatusCode::kNotFound);
  EXPECT_EQ(client.snapshot()["messages_sent"], sent);  // served from the cache
  EXPECT_EQ(client.snapshot()["negative_hits"], 1u);

  sim_.run_until(stamped + 300);  // negative TTL lapses (boundary counts)
  auto third = client.resolve(root_, ghost);
  EXPECT_FALSE(third.is_ok());
  EXPECT_GT(client.snapshot()["messages_sent"], sent);  // back to the network
}

// --- Tentpole: epoch-based invalidation ------------------------------------

TEST_F(NsHardeningTest, EpochInvalidationDropsSupersededEntry) {
  ResolverClientConfig config;
  config.cache_ttl = 1u << 30;  // TTL alone would keep the stale lie forever
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName name = CompoundName::relative("local/data.txt");
  auto before = client.resolve(root_, name);
  ASSERT_TRUE(before.is_ok());

  // The authority rebinds the name...
  EntityId fresh = rebind_local("data.txt", "new contents");
  // ...and the client hears about the directory's new epoch through an
  // unrelated miss in the same directory.
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("local/other.txt"))
          .is_ok());

  auto after = client.resolve(root_, name);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value(), fresh);             // reconverged with authority
  EXPECT_NE(after.value(), before.value());
  EXPECT_EQ(client.snapshot()["stale_epoch_drops"], 1u);
}

TEST_F(NsHardeningTest, TtlOnlyCachingKeepsServingStaleBinding) {
  // Control for the test above: with invalidation off, the same sequence
  // keeps resolving to the superseded entity — §5 temporal incoherence.
  ResolverClientConfig config;
  config.cache_ttl = 1u << 30;
  config.epoch_invalidation = false;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName name = CompoundName::relative("local/data.txt");
  auto before = client.resolve(root_, name);
  ASSERT_TRUE(before.is_ok());
  EntityId fresh = rebind_local("data.txt", "new contents");
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("local/other.txt"))
          .is_ok());
  auto after = client.resolve(root_, name);
  ASSERT_TRUE(after.is_ok());
  EXPECT_NE(after.value(), fresh);  // still the stale binding
  EXPECT_EQ(after.value(), before.value());
  EXPECT_EQ(client.snapshot()["stale_epoch_drops"], 0u);
}

TEST_F(NsHardeningTest, NegativeEntryInvalidatedWhenNameAppears) {
  ResolverClientConfig config;
  config.negative_cache_ttl = 1u << 30;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName ghost = CompoundName::relative("local/ghost");
  EXPECT_FALSE(client.resolve(root_, ghost).is_ok());  // cached "no"

  // The name comes into existence; an unrelated lookup in the directory
  // carries the new epoch, superseding the cached error.
  ASSERT_TRUE(fs_.create_file_at(root_, "local/ghost", "now real").is_ok());
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("local/data.txt"))
          .is_ok());
  auto revived = client.resolve(root_, ghost);
  ASSERT_TRUE(revived.is_ok());
  EXPECT_EQ(graph_.data(revived.value()), "now real");
  EXPECT_EQ(client.snapshot()["stale_epoch_drops"], 1u);
}

// --- Satellite: AuthorityMap::set_home_subtree re-homes the root ----------------

TEST_F(NsHardeningTest, SetHomeSubtreeRehomesRoot) {
  // Pre-fix this call silently no-opped when the root already had a
  // different home, leaving the caller none the wiser.
  ASSERT_EQ(homes_.home_of(shared_).value(), m2_);
  homes_.set_home_subtree(graph_, shared_, m3_);
  EXPECT_EQ(homes_.home_of(shared_).value(), m3_);
  // Descendants that already had their own (now foreign) authority keep it.
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId proj = fs_.resolve_path(ctx, "/shared/proj").entity;
  EXPECT_EQ(homes_.home_of(proj).value(), m2_);
}

// --- Referral forwarding is slice-based ------------------------------------

TEST_F(NsHardeningTest, RogueReferralRemainingIsRejectedNotForwarded) {
  // Replace m1's server with a rogue that refers the client onward with a
  // "remaining" path that is NOT a suffix of what was asked. The client
  // forwards a verified slice of its own original request, so the rogue
  // text must be rejected instead of resolved.
  transport_.set_handler(
      server1_, [this](EndpointId self, const Message& message) {
        if (message.type != NsWire::kResolveRequest) return;
        Message reply;
        reply.type = NsWire::kResolveReply;
        reply.payload.add_u64(message.payload.u64_at(0));  // echo corr
        reply.payload.add_u64(NsWire::kReferral);
        reply.payload.add_u64(message.payload.u64_at(1));
        reply.payload.add_name(std::string("evil/detour"));
        reply.payload.add_string("");
        reply.payload.add_pid(Pid::self());
        reply.payload.add_u64(NsWire::kNoEntity);
        reply.payload.add_u64(0);
        (void)transport_.send(self, message.reply_to, std::move(reply));
      });
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("not a suffix"),
            std::string::npos);
  EXPECT_EQ(client.snapshot()["referrals_followed"], 0u);
  EXPECT_EQ(client.snapshot()["failures"], 1u);
}

TEST_F(NsHardeningTest, HonestReferralChainStillResolves) {
  // The happy path through the same slice machinery: /shared is homed on
  // m2, so a client on m1 is referred and must land on the right file.
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "shared readme");
  EXPECT_GE(client.snapshot()["referrals_followed"], 1u);
}

// --- Rebind epochs at the core layer ---------------------------------------

TEST_F(NsHardeningTest, RebindEpochCountsEffectiveChangesOnly) {
  EntityId dir = graph_.add_context_object("dir");
  EntityId file = graph_.add_data_object("file");
  EntityId other = graph_.add_data_object("other");
  std::uint64_t e0 = graph_.rebind_epoch(dir);
  ASSERT_TRUE(graph_.bind(dir, Name("x"), file).is_ok());
  EXPECT_EQ(graph_.rebind_epoch(dir), e0 + 1);
  ASSERT_TRUE(graph_.bind(dir, Name("x"), file).is_ok());  // same function
  EXPECT_EQ(graph_.rebind_epoch(dir), e0 + 1);
  ASSERT_TRUE(graph_.bind(dir, Name("x"), other).is_ok());  // real rebind
  EXPECT_EQ(graph_.rebind_epoch(dir), e0 + 2);
  ASSERT_TRUE(graph_.unbind(dir, Name("x")).is_ok());
  EXPECT_EQ(graph_.rebind_epoch(dir), e0 + 3);
  EXPECT_FALSE(graph_.unbind(dir, Name("x")).is_ok());  // no-op unbind
  EXPECT_EQ(graph_.rebind_epoch(dir), e0 + 3);
}

// --- Tentpole acceptance: one lossy lookup = one span, full event chain ----

TEST_F(NsHardeningTest, LossyLookupYieldsOneSpanWithFullEventChain) {
  TransportConfig lossy;
  lossy.drop_probability = 1.0;  // total blackout at first
  Transport tp(sim_, net_, lossy);
  tp.tracer().set_enabled(true);
  NameService service(graph_, net_, tp, homes_);
  service.add_server(m1_);
  ResolverClientConfig config;
  config.retry.retries = 2;
  config.retry.request_timeout = 100;
  config.cache_ttl = 1000;  // so the cache probe is part of the story
  ResolverClient client(graph_, net_, tp, sim_, service, m1_, "c", config);
  // The first attempt is sent into the blackout; the line heals (an event
  // on the shared clock, fired while the client waits out the first
  // timeout window) before the backoff retry leaves.
  sim_.schedule_at(50, [&] { tp.set_drop_probability(0.0); });

  auto result = client.resolve(root_, CompoundName::relative("local"));
  ASSERT_TRUE(result.is_ok());

  const Tracer& tracer = tp.tracer();
  ASSERT_EQ(tracer.spans().size(), 1u);
  const SpanRecord& span = tracer.spans().front();
  EXPECT_FALSE(span.open);
  EXPECT_TRUE(span.ok);
  EXPECT_EQ(span.start_entity, root_.value());
  EXPECT_EQ(span.path, "local");
  ASSERT_EQ(span.corrs.size(), 2u);  // one correlation id per attempt

  const auto events = tracer.events_for_span(span.id);
  auto count = [&](EventKind kind) {
    return std::count_if(
        events.begin(), events.end(),
        [&](const TraceEvent& e) { return e.kind == kind; });
  };
  EXPECT_EQ(count(EventKind::kCacheMiss), 1);
  EXPECT_EQ(count(EventKind::kSend), 3);  // attempt 1, attempt 2, the reply
  EXPECT_EQ(count(EventKind::kDrop), 1);  // attempt 1, lost
  EXPECT_EQ(count(EventKind::kTimeout), 1);
  EXPECT_EQ(count(EventKind::kBackoffRetry), 1);
  EXPECT_EQ(count(EventKind::kDeliver), 2);  // attempt 2 + its reply
  EXPECT_EQ(count(EventKind::kServerHandle), 1);
  EXPECT_EQ(count(EventKind::kServerAnswer), 1);

  // Cross-machine attachment: the wire events carry the correlation id of
  // the attempt they belong to — the drop is the first attempt's, the
  // server-side handling happened under the second (the one that got
  // through) — yet all of them land in this one span.
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kDrop) {
      EXPECT_EQ(e.corr, span.corrs[0]);
    }
    if (e.kind == EventKind::kServerHandle ||
        e.kind == EventKind::kServerAnswer) {
      EXPECT_EQ(e.corr, span.corrs[1]);
    }
  }

  // And the span is findable FROM a correlation id, the way an operator
  // chasing one wire message would come at it.
  EXPECT_EQ(tracer.span(span.id)->id, span.id);
}

TEST_F(NsHardeningTest, SecondResolutionGetsItsOwnSpan) {
  transport_.tracer().set_enabled(true);
  ResolverClientConfig config;
  config.cache_ttl = 1000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  ASSERT_TRUE(client.resolve(root_, CompoundName::relative("local")).is_ok());
  ASSERT_TRUE(client.resolve(root_, CompoundName::relative("local")).is_ok());
  const Tracer& tracer = transport_.tracer();
  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& first = tracer.spans()[0];
  const SpanRecord& second = tracer.spans()[1];
  EXPECT_EQ(first.corrs.size(), 1u);   // one attempt, no loss
  EXPECT_TRUE(second.corrs.empty());   // pure cache hit: no wire traffic
  auto hit_events = tracer.events_for_span(second.id);
  ASSERT_EQ(hit_events.size(), 3u);  // begin, cache hit, end
  EXPECT_EQ(hit_events[1].kind, EventKind::kCacheHit);
}

// --- Satellite: snapshot() views and the registry must agree ---------------

TEST_F(NsHardeningTest, ClientAndServerSnapshotsMatchRegistry) {
  ResolverClientConfig config;
  config.cache_ttl = 500;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  ASSERT_TRUE(client.resolve(root_, CompoundName::relative("local")).is_ok());
  ASSERT_TRUE(client.resolve(root_, CompoundName::relative("local")).is_ok());
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("shared/proj/readme"))
          .is_ok());

  const MetricsRegistry& metrics = transport_.metrics();
  const std::string prefix =
      "ns.client." + std::to_string(client.endpoint().value()) + ".";
  const StatsSnapshot snap = client.snapshot();
  EXPECT_EQ(snap["resolutions"],
            metrics.counter_value(prefix + "resolutions"));
  EXPECT_EQ(snap["cache_hits"], metrics.counter_value(prefix + "cache_hits"));
  EXPECT_EQ(snap["cache_hits"], 1u);
  EXPECT_EQ(snap["referrals_followed"],
            metrics.counter_value(prefix + "referrals_followed"));
  EXPECT_GE(snap["referrals_followed"], 1u);  // shared/ lives on m2
  const StatsSnapshot server_snap = service_.snapshot();
  EXPECT_EQ(server_snap["requests"],
            metrics.counter_value("ns.server.requests"));
  EXPECT_EQ(server_snap["answers"],
            metrics.counter_value("ns.server.answers"));
  EXPECT_EQ(server_snap["referrals"],
            metrics.counter_value("ns.server.referrals"));
  // Everything lives in ONE registry, exportable in one shot.
  EXPECT_TRUE(metrics.has("transport.sent"));
  EXPECT_FALSE(metrics.to_json().empty());
}

}  // namespace
}  // namespace namecoh
