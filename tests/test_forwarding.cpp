// Tests for the forwarding-table alternative to partial qualification
// (DESIGN.md ablation #3).
#include <gtest/gtest.h>

#include "net/forwarding.hpp"

namespace namecoh {
namespace {

class ForwardingTest : public ::testing::Test {
 protected:
  ForwardingTest() {
    n1_ = net_.add_network("n1");
    m1_ = net_.add_machine(n1_, "m1");
    m2_ = net_.add_machine(n1_, "m2");
    a_ = net_.add_endpoint(m1_, "a");
    b_ = net_.add_endpoint(m1_, "b");
    c_ = net_.add_endpoint(m2_, "c");
  }

  Internetwork net_;
  ForwardingTable table_;
  NetworkId n1_;
  MachineId m1_, m2_;
  EndpointId a_, b_, c_;
};

TEST_F(ForwardingTest, DirectResolutionWithoutEntries) {
  Location loc = net_.location_of(a_).value();
  EXPECT_EQ(table_.resolve(net_, loc).value(), a_);
  EXPECT_EQ(table_.chain_length(net_, loc), 0u);
  EXPECT_EQ(table_.entries(), 0u);
}

TEST_F(ForwardingTest, StaleLocationForwardsAfterRenumber) {
  Location old_a = net_.location_of(a_).value();
  Location old_b = net_.location_of(b_).value();
  ASSERT_TRUE(renumber_machine_with_forwarding(net_, table_, m1_).is_ok());
  // Old locations are dead on the raw internetwork…
  EXPECT_FALSE(net_.endpoint_at(old_a).is_ok());
  // …but the forwarding table chases them.
  EXPECT_EQ(table_.resolve(net_, old_a).value(), a_);
  EXPECT_EQ(table_.resolve(net_, old_b).value(), b_);
  EXPECT_EQ(table_.entries(), 2u);  // one edge per endpoint on the machine
  EXPECT_EQ(table_.chain_length(net_, old_a), 1u);
}

TEST_F(ForwardingTest, ChainsLengthenWithRepeatedRenumbering) {
  Location original = net_.location_of(a_).value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(renumber_machine_with_forwarding(net_, table_, m1_).is_ok());
  }
  // Chain length is measured before the first resolve: resolving
  // path-compresses the chain (see below).
  EXPECT_EQ(table_.chain_length(net_, original), 5u);
  EXPECT_EQ(table_.resolve(net_, original).value(), a_);
  // State grows with history: 2 endpoints × 5 renumberings.
  EXPECT_EQ(table_.entries(), 10u);
  EXPECT_GE(table_.snapshot()["chased"], 5u);
}

TEST_F(ForwardingTest, ResolveCompressesChasedChains) {
  Location original = net_.location_of(a_).value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(renumber_machine_with_forwarding(net_, table_, m1_).is_ok());
  }
  ASSERT_EQ(table_.chain_length(net_, original), 5u);
  ASSERT_EQ(table_.resolve(net_, original).value(), a_);
  // Every chased hop now points straight at the live location…
  EXPECT_EQ(table_.chain_length(net_, original), 1u);
  // …the final hop already did, so 4 of the 5 entries were rewritten.
  EXPECT_EQ(table_.snapshot()["compressed"], 4u);
  // Second lookup is one hop; entries are rewritten, never removed.
  std::uint64_t chased_before = table_.snapshot()["chased"];
  EXPECT_EQ(table_.resolve(net_, original).value(), a_);
  EXPECT_EQ(table_.snapshot()["chased"], chased_before + 1);
  EXPECT_EQ(table_.entries(), 10u);
}

TEST_F(ForwardingTest, NetworkRenumberForwardsEveryone) {
  Location old_a = net_.location_of(a_).value();
  Location old_c = net_.location_of(c_).value();
  ASSERT_TRUE(renumber_network_with_forwarding(net_, table_, n1_).is_ok());
  EXPECT_EQ(table_.resolve(net_, old_a).value(), a_);
  EXPECT_EQ(table_.resolve(net_, old_c).value(), c_);
  EXPECT_EQ(table_.entries(), 3u);
}

TEST_F(ForwardingTest, DeadEndWithoutForwardingEntry) {
  ASSERT_TRUE(net_.renumber_machine(m1_).is_ok());  // raw renumber: no entry
  Location stale{net_.naddr_of(n1_).value(), 1, 1};
  auto result = table_.resolve(net_, stale);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kUnreachable);
  EXPECT_EQ(table_.snapshot()["dead_ends"], 1u);
}

TEST_F(ForwardingTest, HopLimitGuardsOverlongChains) {
  ForwardingTable tiny(/*max_hops=*/2);
  // A dead chain longer than the hop limit (no cycle — those are refused
  // at add() now).
  Location x1{9, 9, 1}, x2{9, 9, 2}, x3{9, 9, 3}, x4{9, 9, 4};
  tiny.add(x1, x2);
  tiny.add(x2, x3);
  tiny.add(x3, x4);
  auto result = tiny.resolve(net_, x1);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kDepthExceeded);
  EXPECT_EQ(tiny.snapshot()["exhausted"], 1u);
}

// Regression: add() used to install cycle-closing edges verbatim, turning
// every lookup through them into a spin to the hop limit.
TEST_F(ForwardingTest, CycleClosingEdgesAreRefused) {
  Location x{9, 9, 1}, y{9, 9, 2}, z{9, 9, 3};
  table_.add(x, y);
  table_.add(y, z);
  // Direct 2-cycle and a longer loop back to the chain head: both refused.
  table_.add(y, x);
  table_.add(z, x);
  EXPECT_EQ(table_.entries(), 2u);
  EXPECT_EQ(table_.snapshot()["cycles_refused"], 2u);
  // The surviving chain still dead-ends cleanly instead of spinning.
  auto result = table_.resolve(net_, x);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kUnreachable);
}

TEST_F(ForwardingTest, MetricsRegistryBacksStats) {
  MetricsRegistry shared;
  ForwardingTable table(64, &shared);
  Location x{9, 9, 1}, y{9, 9, 2};
  table.add(x, y);
  table.add(y, x);  // refused
  (void)table.resolve(net_, x);
  EXPECT_EQ(shared.counter_value("forwarding.lookups"), 1u);
  EXPECT_EQ(shared.counter_value("forwarding.cycles_refused"), 1u);
  EXPECT_EQ(shared.counter_value("forwarding.dead_ends"), 1u);
  EXPECT_EQ(table.snapshot()["lookups"], 1u);
  EXPECT_EQ(table.snapshot()["cycles_refused"], 1u);
}

TEST_F(ForwardingTest, SelfEdgeIgnored) {
  Location loc = net_.location_of(a_).value();
  table_.add(loc, loc);
  EXPECT_EQ(table_.entries(), 0u);
}

TEST_F(ForwardingTest, StatsAccumulate) {
  Location old_a = net_.location_of(a_).value();
  ASSERT_TRUE(renumber_machine_with_forwarding(net_, table_, m1_).is_ok());
  (void)table_.resolve(net_, old_a);
  (void)table_.resolve(net_, old_a);
  EXPECT_EQ(table_.snapshot()["lookups"], 2u);
  EXPECT_EQ(table_.snapshot()["chased"], 2u);
}

TEST_F(ForwardingTest, ForwardingVsPartialQualificationContrast) {
  // The point of the ablation, as a unit test: after k renumberings the
  // partially qualified (0,0,l) pid works with ZERO state, while the
  // fully qualified pid needs k forwarding edges per endpoint.
  Location a_loc = net_.location_of(a_).value();
  Location b_loc = net_.location_of(b_).value();
  Pid pq = relativize(b_loc, a_loc);  // (0,0,l)
  Pid fq = Pid::fully_qualified(b_loc);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(renumber_machine_with_forwarding(net_, table_, m1_).is_ok());
  }
  // PQ: resolves directly via qualification from a's *current* location.
  Location a_now = net_.location_of(a_).value();
  EXPECT_EQ(net_.endpoint_at(qualify(pq, a_now).value()).value(), b_);
  // FQ: dead without the table, alive with it — at a cost.
  EXPECT_FALSE(
      net_.endpoint_at(Location{fq.naddr, fq.maddr, fq.laddr}).is_ok());
  EXPECT_EQ(
      table_.resolve(net_, Location{fq.naddr, fq.maddr, fq.laddr}).value(),
      b_);
  EXPECT_EQ(table_.entries(), 6u);  // 2 endpoints × 3 renumberings
}

}  // namespace
}  // namespace namecoh
