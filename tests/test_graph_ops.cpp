// Tests for whole-graph queries: reachability, name enumeration, shortest
// names, DOT rendering.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/graph_ops.hpp"

namespace namecoh {
namespace {

class GraphOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = g_.add_context_object("root");
    a_ = g_.add_context_object("a");
    b_ = g_.add_context_object("b");
    deep_ = g_.add_context_object("deep");
    f1_ = g_.add_data_object("f1");
    f2_ = g_.add_data_object("f2");
    island_ = g_.add_data_object("island");  // unreachable
    ASSERT_TRUE(g_.bind(root_, Name("a"), a_).is_ok());
    ASSERT_TRUE(g_.bind(root_, Name("b"), b_).is_ok());
    ASSERT_TRUE(g_.bind(a_, Name("deep"), deep_).is_ok());
    ASSERT_TRUE(g_.bind(a_, Name("f1"), f1_).is_ok());
    ASSERT_TRUE(g_.bind(deep_, Name("f2"), f2_).is_ok());
    // Unix dot edges (should be skipped by default enumeration).
    ASSERT_TRUE(g_.bind(a_, Name("."), a_).is_ok());
    ASSERT_TRUE(g_.bind(a_, Name(".."), root_).is_ok());
  }

  NamingGraph g_;
  EntityId root_, a_, b_, deep_, f1_, f2_, island_;
};

TEST_F(GraphOpsTest, ReachableFromRoot) {
  auto reachable = reachable_from(g_, root_);
  EXPECT_TRUE(reachable.contains(root_));
  EXPECT_TRUE(reachable.contains(a_));
  EXPECT_TRUE(reachable.contains(b_));
  EXPECT_TRUE(reachable.contains(deep_));
  EXPECT_TRUE(reachable.contains(f1_));
  EXPECT_TRUE(reachable.contains(f2_));
  EXPECT_FALSE(reachable.contains(island_));
}

TEST_F(GraphOpsTest, ReachableRespectsDepthLimit) {
  auto reachable = reachable_from(g_, root_, /*max_depth=*/1);
  EXPECT_TRUE(reachable.contains(a_));
  EXPECT_FALSE(reachable.contains(f2_));  // two hops away
}

TEST_F(GraphOpsTest, ReachableFromNonContextIsEmpty) {
  EXPECT_TRUE(reachable_from(g_, f1_).empty());
  EXPECT_TRUE(reachable_from(g_, EntityId::invalid()).empty());
}

TEST_F(GraphOpsTest, ReachableOnCycle) {
  ASSERT_TRUE(g_.bind(deep_, Name("up"), root_).is_ok());
  auto reachable = reachable_from(g_, root_);
  EXPECT_TRUE(reachable.contains(deep_));  // terminates despite the cycle
}

TEST_F(GraphOpsTest, EnumerateNamesBreadthFirst) {
  auto names = enumerate_names(g_, root_);
  // Shortest names come first.
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names[0].name.size(), 1u);
  // Every expected (name, entity) pair is present.
  auto has = [&](const char* path, EntityId e) {
    return std::any_of(names.begin(), names.end(), [&](const NamedEntity& n) {
      return n.name == CompoundName::relative(path) && n.entity == e;
    });
  };
  EXPECT_TRUE(has("a", a_));
  EXPECT_TRUE(has("b", b_));
  EXPECT_TRUE(has("a/f1", f1_));
  EXPECT_TRUE(has("a/deep", deep_));
  EXPECT_TRUE(has("a/deep/f2", f2_));
}

TEST_F(GraphOpsTest, EnumerateSkipsDotNamesByDefault) {
  auto names = enumerate_names(g_, root_);
  for (const auto& named : names) {
    for (const Name& part : named.name.components()) {
      EXPECT_FALSE(part.is_cwd());
      EXPECT_FALSE(part.is_parent());
    }
  }
}

TEST_F(GraphOpsTest, EnumerateCanIncludeDotNames) {
  EnumerateOptions options;
  options.skip_dot_names = false;
  auto names = enumerate_names(g_, root_, options);
  bool found_dot = std::any_of(
      names.begin(), names.end(), [](const NamedEntity& n) {
        return n.name.back().is_cwd() || n.name.back().is_parent();
      });
  EXPECT_TRUE(found_dot);
}

TEST_F(GraphOpsTest, EnumerateContextsOnly) {
  EnumerateOptions options;
  options.contexts_only = true;
  auto names = enumerate_names(g_, root_, options);
  for (const auto& named : names) {
    EXPECT_TRUE(g_.is_context_object(named.entity));
  }
}

TEST_F(GraphOpsTest, EnumerateRespectsMaxResults) {
  EnumerateOptions options;
  options.max_results = 2;
  EXPECT_EQ(enumerate_names(g_, root_, options).size(), 2u);
}

TEST_F(GraphOpsTest, EnumerateRespectsMaxDepth) {
  EnumerateOptions options;
  options.max_depth = 1;
  auto names = enumerate_names(g_, root_, options);
  for (const auto& named : names) EXPECT_LE(named.name.size(), 1u);
}

TEST_F(GraphOpsTest, EnumerateTerminatesOnCycle) {
  ASSERT_TRUE(g_.bind(deep_, Name("loop"), root_).is_ok());
  auto names = enumerate_names(g_, root_);
  EXPECT_LT(names.size(), 100u);  // finite despite the cycle
}

TEST_F(GraphOpsTest, ShortestNameFindsMinimal) {
  auto name = shortest_name(g_, root_, f2_);
  ASSERT_TRUE(name.is_ok());
  EXPECT_EQ(name.value(), CompoundName::relative("a/deep/f2"));
  // Add a shortcut and the shorter name wins.
  ASSERT_TRUE(g_.bind(root_, Name("short"), f2_).is_ok());
  auto name2 = shortest_name(g_, root_, f2_);
  ASSERT_TRUE(name2.is_ok());
  EXPECT_EQ(name2.value(), CompoundName::relative("short"));
}

TEST_F(GraphOpsTest, ShortestNameNotFound) {
  EXPECT_EQ(shortest_name(g_, root_, island_).code(), StatusCode::kNotFound);
  EXPECT_EQ(shortest_name(g_, f1_, f2_).code(), StatusCode::kNotAContext);
}

TEST_F(GraphOpsTest, DotOutputContainsNodesAndEdges) {
  std::string dot = to_dot(g_);
  EXPECT_NE(dot.find("digraph naming"), std::string::npos);
  EXPECT_NE(dot.find("label=\"root\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"deep\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // contexts
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // data objects
}

}  // namespace
}  // namespace namecoh
