// Cross-cutting property tests: invariants that must hold on *randomized*
// structures, swept over seeds with TEST_P. These catch the interactions
// that example-based tests miss.
#include <gtest/gtest.h>

#include <unordered_set>

#include "coherence/coherence.hpp"
#include "core/graph_ops.hpp"
#include "embed/embedded.hpp"
#include "fs/snapshot.hpp"
#include "util/rng.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

// Build a random naming forest with cross-links and replicas, driven by a
// seed. Returns roots.
struct RandomWorld {
  NamingGraph graph;
  FileSystem fs{graph};
  std::vector<EntityId> roots;

  explicit RandomWorld(std::uint64_t seed, std::size_t n_roots = 2) {
    Rng rng(seed);
    for (std::size_t r = 0; r < n_roots; ++r) {
      EntityId root = fs.make_root("r" + std::to_string(r));
      roots.push_back(root);
      TreeSpec spec;
      spec.depth = 1 + rng.next_below(3);
      spec.dirs_per_dir = 1 + rng.next_below(3);
      spec.files_per_dir = rng.next_below(4);
      spec.common_fraction = rng.uniform01();
      spec.site_tag = "t" + std::to_string(r);
      populate_tree(fs, root, spec, rng.next());
    }
    // Random extra links (possibly creating DAGs/cycles).
    auto dirs = graph.entities_of_kind(EntityKind::kContextObject);
    for (int i = 0; i < 5; ++i) {
      EntityId from = rng.pick(dirs);
      EntityId to = rng.pick(dirs);
      (void)fs.link(from, Name("link" + std::to_string(i)), to);
    }
  }
};

class SeedSweep : public ::testing::TestWithParam<int> {};

// Property: every name reported by enumerate_names resolves to exactly the
// entity it was reported with.
TEST_P(SeedSweep, EnumerationAgreesWithResolution) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()));
  for (EntityId root : w.roots) {
    for (const NamedEntity& named : enumerate_names(w.graph, root)) {
      Resolution res = resolve_from(w.graph, root, named.name);
      ASSERT_TRUE(res.ok()) << named.name.to_path();
      EXPECT_EQ(res.entity, named.entity) << named.name.to_path();
    }
  }
}

// Property: shortest_name's result resolves to the target, and no strictly
// shorter enumerated name does.
TEST_P(SeedSweep, ShortestNameIsValidAndMinimal) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()));
  EntityId root = w.roots[0];
  auto names = enumerate_names(w.graph, root);
  for (std::size_t i = 0; i < names.size(); i += 7) {  // sample
    EntityId target = names[i].entity;
    auto shortest = shortest_name(w.graph, root, target);
    ASSERT_TRUE(shortest.is_ok());
    Resolution res = resolve_from(w.graph, root, shortest.value());
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.entity, target);
    EXPECT_LE(shortest.value().size(), names[i].name.size());
  }
}

// Property: every directory created by the fs has exactly one "." binding
// to itself and a ".." binding to a context object.
TEST_P(SeedSweep, DirectoryDotInvariants) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()));
  for (EntityId e : w.graph.entities_of_kind(EntityKind::kContextObject)) {
    const Context& ctx = w.graph.context(e);
    EntityId self = ctx(Name("."));
    EntityId parent = ctx(Name(".."));
    ASSERT_TRUE(self.valid());
    EXPECT_EQ(self, e);
    ASSERT_TRUE(parent.valid());
    EXPECT_TRUE(w.graph.is_context_object(parent));
  }
}

// Property: coherence is symmetric and reflexive over any probe set.
TEST_P(SeedSweep, CoherenceSymmetricReflexive) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()));
  CoherenceAnalyzer analyzer(w.graph);
  EntityId a = w.graph.add_context_object("pa");
  w.graph.context(a) = FileSystem::make_process_context(w.roots[0],
                                                        w.roots[0]);
  EntityId b = w.graph.add_context_object("pb");
  w.graph.context(b) = FileSystem::make_process_context(w.roots[1],
                                                        w.roots[1]);
  auto probes = absolutize(probes_from_dir(w.graph, w.roots[0]));
  if (probes.empty()) return;
  DegreeReport ab = analyzer.degree(a, b, probes);
  DegreeReport ba = analyzer.degree(b, a, probes);
  EXPECT_EQ(ab.strict.successes(), ba.strict.successes());
  EXPECT_EQ(ab.weak.successes(), ba.weak.successes());
  DegreeReport aa = analyzer.degree(a, a, probes);
  EXPECT_DOUBLE_EQ(aa.strict.fraction(), 1.0);
}

// Property: a verdict is never "weak but also strictly coherent"
// inconsistent — strict implies weak over any pair.
TEST_P(SeedSweep, StrictImpliesWeak) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()));
  CoherenceAnalyzer analyzer(w.graph);
  EntityId a = w.graph.add_context_object("pa");
  w.graph.context(a) = FileSystem::make_process_context(w.roots[0],
                                                        w.roots[0]);
  EntityId b = w.graph.add_context_object("pb");
  w.graph.context(b) = FileSystem::make_process_context(w.roots[1],
                                                        w.roots[1]);
  auto probes = absolutize(probes_from_dir(w.graph, w.roots[0]));
  for (const CompoundName& probe : probes) {
    if (analyzer.coherent_for(a, b, probe, CoherenceMode::kStrict)) {
      EXPECT_TRUE(analyzer.coherent_for(a, b, probe, CoherenceMode::kWeak));
    }
  }
}

// Property: snapshot serialization reaches a fixed point after one
// normalizing round trip (import relabels the subtree root to its binding
// name; everything else must be byte-identical), and the imported subtree
// enumerates exactly the same names as the original.
TEST_P(SeedSweep, SnapshotRoundTripCanonical) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()), 1);
  EntityId root = w.roots[0];
  auto snap1 = export_subtree(w.graph, root);
  ASSERT_TRUE(snap1.is_ok());

  NamingGraph other;
  FileSystem other_fs(other);
  EntityId dst = other_fs.make_root("dst");
  auto import1 = import_snapshot(other_fs, dst, Name("x"), snap1.value());
  ASSERT_TRUE(import1.is_ok());
  auto snap2 = export_subtree(other, import1.value().root);
  ASSERT_TRUE(snap2.is_ok());
  auto import2 = import_snapshot(other_fs, dst, Name("x2"), snap2.value());
  ASSERT_TRUE(import2.is_ok());
  auto snap3 = export_subtree(other, import2.value().root);
  ASSERT_TRUE(snap3.is_ok());
  // snap2 was imported under "x", snap3 under "x2": equality must hold on
  // everything but the root label, and holds exactly once the label
  // normalizes — compare after re-labelling both roots identically.
  other.set_label(import1.value().root, "norm");
  other.set_label(import2.value().root, "norm");
  EXPECT_EQ(export_subtree(other, import1.value().root).value(),
            export_subtree(other, import2.value().root).value());

  // Same name sets on both sides.
  auto names_src = probes_from_dir(w.graph, root);
  auto names_dst = probes_from_dir(other, import1.value().root);
  EXPECT_EQ(names_src, names_dst);
}

// Property: copy_subtree is observationally equal to snapshot-roundtrip
// within one graph: both produce a subtree enumerating the same names with
// the same file contents.
TEST_P(SeedSweep, CopyEqualsSnapshotImport) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()), 1);
  EntityId root = w.roots[0];
  EntityId dst = w.fs.make_root("dst");
  auto copied = w.fs.copy_subtree(root, dst, Name("via-copy"));
  ASSERT_TRUE(copied.is_ok());
  auto snap = export_subtree(w.graph, root);
  ASSERT_TRUE(snap.is_ok());
  auto imported = import_snapshot(w.fs, dst, Name("via-snap"), snap.value());
  ASSERT_TRUE(imported.is_ok());

  auto names_copy = probes_from_dir(w.graph, copied.value());
  auto names_snap = probes_from_dir(w.graph, imported.value().root);
  ASSERT_EQ(names_copy, names_snap);
  for (const CompoundName& name : names_copy) {
    Resolution via_copy = resolve_from(w.graph, copied.value(), name);
    Resolution via_snap = resolve_from(w.graph, imported.value().root, name);
    ASSERT_TRUE(via_copy.ok());
    ASSERT_TRUE(via_snap.ok());
    if (w.graph.is_data_object(via_copy.entity)) {
      EXPECT_EQ(w.graph.data(via_copy.entity),
                w.graph.data(via_snap.entity));
    }
  }
}

// Property: Algol-scope resolution agrees with manual scope search plus
// plain resolution.
TEST_P(SeedSweep, AlgolScopeDecomposition) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()), 1);
  EmbeddedNameResolver resolver(w.graph);
  auto dirs = w.graph.entities_of_kind(EntityKind::kContextObject);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  for (int i = 0; i < 10; ++i) {
    EntityId dir = rng.pick(dirs);
    // Pick a name visible somewhere up the chain.
    auto entries = w.fs.list(dir);
    if (entries.empty()) continue;
    CompoundName name({entries[rng.next_below(entries.size())].first});
    auto scope = resolver.find_scope(dir, name);
    ASSERT_TRUE(scope.is_ok());
    Resolution via_algol = resolver.resolve_algol(dir, name);
    Resolution direct = resolve_from(w.graph, scope.value(), name);
    ASSERT_TRUE(via_algol.ok());
    EXPECT_EQ(via_algol.entity, direct.entity);
  }
}

// Property: the resolver trail is always a chain of context objects and
// steps equal the component count on success.
TEST_P(SeedSweep, TrailWellFormed) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()), 1);
  EntityId root = w.roots[0];
  for (const NamedEntity& named : enumerate_names(w.graph, root)) {
    Resolution res = resolve_from(w.graph, root, named.name);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.steps, named.name.size());
    for (EntityId ctx : res.trail) {
      EXPECT_TRUE(w.graph.is_context_object(ctx));
    }
    EXPECT_EQ(res.trail.front(), root);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 21));

}  // namespace
}  // namespace namecoh
