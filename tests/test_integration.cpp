// Cross-module integration tests: miniature versions of the bench
// experiments, asserting the paper's qualitative shapes end-to-end.
#include <gtest/gtest.h>

#include "coherence/coherence.hpp"
#include "embed/embedded.hpp"
#include "os/process_manager.hpp"
#include "schemes/newcastle.hpp"
#include "schemes/shared_graph.hpp"
#include "workload/doc_gen.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

// E1 in miniature: partially qualified pids survive renumbering that kills
// fully qualified ones.
TEST(Integration, PqidSurvivalUnderRenumbering) {
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);
  NetworkId n1 = net.add_network("n1");
  NetworkId n2 = net.add_network("n2");
  MachineId m1 = net.add_machine(n1, "m1");
  MachineId m2 = net.add_machine(n1, "m2");
  MachineId m3 = net.add_machine(n2, "m3");
  EndpointId a = net.add_endpoint(m1, "a");
  EndpointId b = net.add_endpoint(m1, "b");   // same machine as a
  EndpointId c = net.add_endpoint(m2, "c");   // same network
  EndpointId d = net.add_endpoint(m3, "d");   // other network
  (void)d;

  // a holds three pids for b: minimal, network-qualified, fully qualified.
  Location b_loc = net.location_of(b).value();
  Location a_loc = net.location_of(a).value();
  Pid minimal = relativize(b_loc, a_loc);                 // (0,0,l)
  Pid network_q{0, b_loc.maddr, b_loc.laddr};             // (0,m,l)
  Pid full = Pid::fully_qualified(b_loc);                 // (n,m,l)
  ASSERT_EQ(tp.resolve_pid(a, minimal).value(), b);
  ASSERT_EQ(tp.resolve_pid(a, network_q).value(), b);
  ASSERT_EQ(tp.resolve_pid(a, full).value(), b);
  // c (other machine) holds the network-qualified and full pids.
  ASSERT_EQ(tp.resolve_pid(c, network_q).value(), b);

  // Renumber the network: everything *inside* keeps working …
  ASSERT_TRUE(net.renumber_network(n1).is_ok());
  EXPECT_EQ(tp.resolve_pid(a, minimal).value(), b);
  EXPECT_EQ(tp.resolve_pid(a, network_q).value(), b);
  EXPECT_EQ(tp.resolve_pid(c, network_q).value(), b);
  // … but the fully qualified pid is stale everywhere.
  EXPECT_FALSE(tp.resolve_pid(a, full).is_ok());

  // Renumber b's machine: the machine-qualified pid dies too; only the
  // intra-machine pid survives.
  ASSERT_TRUE(net.renumber_machine(m1).is_ok());
  EXPECT_EQ(tp.resolve_pid(a, minimal).value(), b);
  EXPECT_FALSE(tp.resolve_pid(c, network_q).is_ok());
}

// F2 in miniature, over the real message path: exchanged names are coherent
// under R(sender) and incoherent under R(receiver).
TEST(Integration, ExchangedNamesAcrossMachines) {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);
  ProcessManager pm(graph, fs, net, tp);
  NetworkId n = net.add_network("lan");
  MachineId m1 = net.add_machine(n, "m1");
  MachineId m2 = net.add_machine(n, "m2");
  EntityId r1 = fs.make_root("m1");
  EntityId r2 = fs.make_root("m2");
  TreeSpec spec;
  spec.site_tag = "s1";
  populate_tree(fs, r1, spec, 21);
  spec.site_tag = "s2";
  populate_tree(fs, r2, spec, 21);
  ProcessId sender = pm.spawn(m1, "sender", r1, r1);
  ProcessId receiver = pm.spawn(m2, "receiver", r2, r2);

  // The sender sends every name it can see.
  auto probes = absolutize(probes_from_dir(graph, r1));
  for (const auto& p : probes) {
    ASSERT_TRUE(pm.send_name_to(sender, receiver, p.to_path()).is_ok());
  }
  pm.settle();
  ASSERT_EQ(pm.received_names().size(), probes.size());

  FractionCounter receiver_rule, sender_rule;
  for (const ReceivedName& rn : pm.received_names()) {
    Resolution meant = pm.resolve_internal(sender, rn.path);
    Resolution as_recv = pm.resolve_received(rn, ByReceiverRule{});
    Resolution as_send = pm.resolve_received(rn, BySenderRule{});
    receiver_rule.add(meant.same_entity(as_recv));
    sender_rule.add(meant.same_entity(as_send));
  }
  EXPECT_DOUBLE_EQ(sender_rule.fraction(), 1.0);
  EXPECT_LT(receiver_rule.fraction(), 0.01);
}

// F3+F4 in miniature: the coherence ordering of the schemes.
TEST(Integration, SchemeCoherenceOrdering) {
  // Newcastle < shared-graph(vice names) for cross-site coherence.
  NamingGraph g1;
  FileSystem f1(g1);
  NewcastleScheme newcastle(f1);
  SiteId na = newcastle.add_site("m1");
  SiteId nb = newcastle.add_site("m2");
  TreeSpec spec;
  spec.site_tag = "s1";
  populate_tree(f1, newcastle.site_tree(na), spec, 4);
  spec.site_tag = "s2";
  populate_tree(f1, newcastle.site_tree(nb), spec, 4);
  newcastle.finalize();
  CoherenceAnalyzer an1(g1);
  auto nc_probes = absolutize(probes_from_dir(g1, newcastle.site_tree(na)));
  double newcastle_coherence =
      an1.degree(newcastle.make_site_context(na),
                 newcastle.make_site_context(nb), nc_probes)
          .strict.fraction();

  NamingGraph g2;
  FileSystem f2(g2);
  SharedGraphScheme shared(f2);
  SiteId sa = shared.add_site("c1");
  SiteId sb = shared.add_site("c2");
  spec.site_tag = "s1";
  populate_tree(f2, shared.site_tree(sa), spec, 4);
  spec.site_tag = "s2";
  populate_tree(f2, shared.site_tree(sb), spec, 4);
  NAMECOH_CHECK(f2.create_file_at(shared.shared_tree(), "lib/c", "c").is_ok(),
                "");
  shared.finalize();
  CoherenceAnalyzer an2(g2);
  // Mixed probe set: local names + vice names.
  auto sg_probes = absolutize(probes_from_dir(g2, shared.site_tree(sa)));
  double shared_coherence =
      an2.degree(shared.make_site_context(sa), shared.make_site_context(sb),
                 sg_probes)
          .strict.fraction();

  EXPECT_EQ(newcastle_coherence, 0.0);
  EXPECT_GT(shared_coherence, 0.0);  // the /vice subset is coherent
  EXPECT_LT(shared_coherence, 1.0);  // the local names are not
}

// F6 in miniature over a *distributed* layout: document on a shared tree,
// read from two client sites.
TEST(Integration, SharedDocumentCoherentViaAlgolRule) {
  NamingGraph graph;
  FileSystem fs(graph);
  SharedGraphScheme scheme(fs);
  SiteId s1 = scheme.add_site("c1");
  SiteId s2 = scheme.add_site("c2");
  scheme.finalize();
  Document doc = make_document(fs, scheme.shared_tree(), Name("book"),
                               DocSpec{});
  ASSERT_TRUE(fs.is_file(doc.root_file));
  DocumentAssembler assembler(graph);

  // Each site opens the document through its own /vice attachment.
  auto open_from = [&](SiteId site) {
    Context ctx = FileSystem::make_process_context(scheme.site_root(site),
                                                   scheme.site_root(site));
    Resolution res = fs.resolve_path(ctx, "/vice/book/book.tex");
    NAMECOH_CHECK(res.ok(), "open failed");
    AssembleOptions algol;
    algol.rule = EmbedRule::kAlgolScope;
    return assembler.assemble(res.entity, res.trail.back(), algol);
  };
  DocumentMeaning m1 = open_from(s1);
  DocumentMeaning m2 = open_from(s2);
  EXPECT_TRUE(m1.fully_resolved());
  EXPECT_TRUE(m1.same_meaning(m2));  // coherent structured object
}

// E2 in miniature: the remote-execution policy trade-off measured.
TEST(Integration, RemoteExecPolicyTradeoff) {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);
  ProcessManager pm(graph, fs, net, tp);
  NetworkId n = net.add_network("lan");
  MachineId m1 = net.add_machine(n, "m1");
  MachineId m2 = net.add_machine(n, "m2");
  EntityId r1 = fs.make_root("m1");
  EntityId r2 = fs.make_root("m2");
  populate_unix_skeleton(fs, r1, "m1");
  populate_unix_skeleton(fs, r2, "m2");
  ASSERT_TRUE(fs.create_file_at(r1, "job/input.dat", "payload").is_ok());
  ProcessId parent = pm.spawn(m1, "parent", r1, r1);

  struct Outcome {
    bool param_coherent;
    bool local_access;
  };
  auto measure = [&](RemoteExecPolicy policy) {
    auto child = pm.remote_exec(parent, m2, "child", policy, r2,
                                Name("exec-site"));
    NAMECOH_CHECK(child.is_ok(), "remote_exec failed");
    Resolution parent_view = pm.resolve_internal(parent, "/job/input.dat");
    Resolution child_view =
        pm.resolve_internal(child.value(), "/job/input.dat");
    bool param = parent_view.same_entity(child_view);
    // Local access: can the child reach m2's own passwd file at all?
    bool local = false;
    for (const char* path :
         {"/etc/passwd", "/exec-site/etc/passwd"}) {
      Resolution res = pm.resolve_internal(child.value(), path);
      if (res.ok() && graph.data(res.entity) == "users of m2") local = true;
    }
    return Outcome{param, local};
  };

  Outcome invoker = measure(RemoteExecPolicy::kInvokerRoot);
  EXPECT_TRUE(invoker.param_coherent);
  EXPECT_FALSE(invoker.local_access);

  Outcome executor = measure(RemoteExecPolicy::kExecutorRoot);
  EXPECT_FALSE(executor.param_coherent);
  EXPECT_TRUE(executor.local_access);

  Outcome private_view = measure(RemoteExecPolicy::kPrivateAttach);
  EXPECT_TRUE(private_view.param_coherent);
  EXPECT_TRUE(private_view.local_access);
}

// The full coherent composite (§6): R(a) internally, R(sender) for
// messages, R(file) for embedded names — all three sources coherent at
// once in a 2-machine system without global names.
TEST(Integration, CoherentPerSourceComposite) {
  NamingGraph graph;
  FileSystem fs(graph);
  Simulator sim;
  Internetwork net;
  Transport tp(sim, net);
  ProcessManager pm(graph, fs, net, tp);
  NetworkId n = net.add_network("lan");
  MachineId m1 = net.add_machine(n, "m1");
  MachineId m2 = net.add_machine(n, "m2");
  EntityId r1 = fs.make_root("m1");
  EntityId r2 = fs.make_root("m2");
  ASSERT_TRUE(fs.create_file_at(r1, "data/file", "F").is_ok());
  ASSERT_TRUE(fs.create_file_at(r2, "data/file", "WRONG").is_ok());
  ProcessId p1 = pm.spawn(m1, "p1", r1, r1);
  ProcessId p2 = pm.spawn(m2, "p2", r2, r2);

  // Exchange: p1 sends "/data/file" to p2.
  ASSERT_TRUE(pm.send_name_to(p1, p2, "/data/file").is_ok());
  pm.settle();
  ASSERT_EQ(pm.received_names().size(), 1u);
  auto rule = make_coherent_per_source_rule();
  Resolution received = pm.resolve_received(pm.received_names()[0], *rule);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(graph.data(received.entity), "F");  // the sender's file

  // Embedded: a file on m1 embeds "data/file"; p2 reads it through a
  // cross-machine link with the object rule in force.
  auto doc = fs.create_file_at(r1, "doc/readme", "see: ");
  ASSERT_TRUE(doc.is_ok());
  graph.add_embedded_name(doc.value(), CompoundName::relative("data/file"));
  // Algol-scope resolution of the embedded name from its containing dir.
  EmbeddedNameResolver resolver(graph);
  Context ctx1 = FileSystem::make_process_context(r1, r1);
  EntityId doc_dir = fs.resolve_path(ctx1, "/doc").entity;
  Resolution embedded = resolver.resolve_algol(
      doc_dir, graph.embedded_names(doc.value())[0]);
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ(graph.data(embedded.entity), "F");
}

}  // namespace
}  // namespace namecoh
