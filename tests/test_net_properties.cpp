// Randomized message-level properties of the net/os layers: the R(sender)
// remap invariant, reply_to usability, registry correctness under random
// topologies, and delivery determinism.
#include <gtest/gtest.h>

#include "os/process_manager.hpp"
#include "os/service_registry.hpp"
#include "util/rng.hpp"

namespace namecoh {
namespace {

// A random topology: 1-3 networks, 1-4 machines each, 1-4 endpoints per
// machine.
struct RandomNet {
  Simulator sim;
  Internetwork net;
  Transport transport{sim, net};
  std::vector<MachineId> machines;
  std::vector<EndpointId> endpoints;

  explicit RandomNet(std::uint64_t seed) {
    Rng rng(seed);
    std::size_t n_nets = 1 + rng.next_below(3);
    for (std::size_t n = 0; n < n_nets; ++n) {
      NetworkId network = net.add_network("n" + std::to_string(n));
      std::size_t n_machines = 1 + rng.next_below(4);
      for (std::size_t m = 0; m < n_machines; ++m) {
        machines.push_back(net.add_machine(network, "m"));
        std::size_t n_eps = 1 + rng.next_below(4);
        for (std::size_t e = 0; e < n_eps; ++e) {
          endpoints.push_back(net.add_endpoint(machines.back(), "p"));
        }
      }
    }
  }
};

class NetSeedSweep : public ::testing::TestWithParam<int> {};

// Property: for ANY (sender, receiver, subject) triple, a pid embedded at
// minimal qualification arrives denoting the subject — the R(sender)
// remap is universally correct.
TEST_P(NetSeedSweep, RemapInvariant) {
  RandomNet w(static_cast<std::uint64_t>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 30; ++trial) {
    EndpointId sender = rng.pick(w.endpoints);
    EndpointId receiver = rng.pick(w.endpoints);
    EndpointId subject = rng.pick(w.endpoints);
    Location sender_loc = w.net.location_of(sender).value();
    Location receiver_loc = w.net.location_of(receiver).value();
    Location subject_loc = w.net.location_of(subject).value();

    EndpointId resolved = EndpointId::invalid();
    w.transport.set_handler(receiver,
                            [&](EndpointId self, const Message& m) {
                              auto r = w.transport.resolve_pid(
                                  self, m.payload.pid_at(0));
                              if (r.is_ok()) resolved = r.value();
                            });
    Message msg;
    msg.payload.add_pid(relativize(subject_loc, sender_loc));
    ASSERT_TRUE(w.transport
                    .send(sender, relativize(receiver_loc, sender_loc),
                          std::move(msg))
                    .is_ok());
    w.sim.run();
    EXPECT_EQ(resolved, subject)
        << "sender=" << sender_loc << " receiver=" << receiver_loc
        << " subject=" << subject_loc;
    w.transport.clear_handler(receiver);
  }
}

// Property: reply_to always lets the receiver answer the sender, for any
// pair, including self-sends.
TEST_P(NetSeedSweep, ReplyToAlwaysAnswers) {
  RandomNet w(static_cast<std::uint64_t>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    EndpointId a = rng.pick(w.endpoints);
    EndpointId b = rng.pick(w.endpoints);
    bool replied = false;
    w.transport.set_handler(b, [&](EndpointId self, const Message& m) {
      if (m.type == 1) {
        Message reply;
        reply.type = 2;
        ASSERT_TRUE(
            w.transport.send(self, m.reply_to, std::move(reply)).is_ok());
      }
    });
    w.transport.set_handler(a, [&](EndpointId, const Message& m) {
      if (m.type == 2) replied = true;
    });
    Message msg;
    msg.type = 1;
    Location a_loc = w.net.location_of(a).value();
    Location b_loc = w.net.location_of(b).value();
    ASSERT_TRUE(
        w.transport.send(a, relativize(b_loc, a_loc), std::move(msg))
            .is_ok());
    w.sim.run();
    if (a != b) {
      EXPECT_TRUE(replied);
    }
    w.transport.clear_handler(a);
    w.transport.clear_handler(b);
  }
}

// Property: the registry round trip (announce + locate) denotes the
// provider for every (provider, requester) pair in a random topology.
TEST_P(NetSeedSweep, RegistryRoundTripUniversal) {
  RandomNet w(static_cast<std::uint64_t>(GetParam()));
  ServiceRegistry registry(w.net, w.transport, w.machines[0]);
  RegistryClient client(w.net, w.transport, w.sim, registry);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    EndpointId provider = rng.pick(w.endpoints);
    std::string service = "svc" + std::to_string(trial);
    ASSERT_TRUE(client.announce(provider, service, provider).is_ok());
    w.sim.run();
    EndpointId requester = rng.pick(w.endpoints);
    auto pid = client.locate(requester, service);
    ASSERT_TRUE(pid.is_ok());
    EXPECT_EQ(w.transport.resolve_pid(requester, pid.value()).value(),
              provider);
  }
}

// Property: two identical runs deliver identical traces (determinism of
// the whole messaging stack).
TEST_P(NetSeedSweep, DeliveryDeterminism) {
  auto run_once = [&](std::uint64_t seed) {
    RandomNet w(seed);
    Rng rng(seed ^ 0xabcdef);
    std::vector<std::string> log;
    for (EndpointId ep : w.endpoints) {
      w.transport.set_handler(ep, [&, ep](EndpointId, const Message& m) {
        log.push_back(std::to_string(ep.value()) + ":" +
                      std::to_string(m.type) + "@" +
                      std::to_string(w.sim.now()));
      });
    }
    for (int i = 0; i < 25; ++i) {
      EndpointId from = rng.pick(w.endpoints);
      EndpointId to = rng.pick(w.endpoints);
      Message msg;
      msg.type = static_cast<std::uint32_t>(i);
      Location f = w.net.location_of(from).value();
      Location t = w.net.location_of(to).value();
      (void)w.transport.send(from, relativize(t, f), std::move(msg));
    }
    w.sim.run();
    return log;
  };
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  EXPECT_EQ(run_once(seed), run_once(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetSeedSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace namecoh
