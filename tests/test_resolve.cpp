// Tests for compound-name resolution — the paper's recursive definition
//   c(n1…nk) = σ(c(n1))(n2…nk)  when σ(c(n1)) ∈ C, else ⊥E.
#include <gtest/gtest.h>

#include "core/resolve.hpp"

namespace namecoh {
namespace {

// Fixture: a small graph   root --a--> da --b--> db --f--> file
//                          root --x--> file2
class ResolveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = g_.add_context_object("root");
    da_ = g_.add_context_object("da");
    db_ = g_.add_context_object("db");
    file_ = g_.add_data_object("file", "payload");
    file2_ = g_.add_data_object("file2");
    act_ = g_.add_activity("proc");
    ASSERT_TRUE(g_.bind(root_, Name("a"), da_).is_ok());
    ASSERT_TRUE(g_.bind(da_, Name("b"), db_).is_ok());
    ASSERT_TRUE(g_.bind(db_, Name("f"), file_).is_ok());
    ASSERT_TRUE(g_.bind(root_, Name("x"), file2_).is_ok());
    ASSERT_TRUE(g_.bind(root_, Name("p"), act_).is_ok());
  }

  NamingGraph g_;
  EntityId root_, da_, db_, file_, file2_, act_;
};

TEST_F(ResolveTest, SingleComponent) {
  Resolution res = resolve_from(g_, root_, CompoundName::relative("a"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, da_);
  EXPECT_EQ(res.steps, 1u);
}

TEST_F(ResolveTest, MultiComponentTraversal) {
  Resolution res = resolve_from(g_, root_, CompoundName::relative("a/b/f"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, file_);
  EXPECT_EQ(res.steps, 3u);
  // Trail records the context objects traversed: root, da, db.
  ASSERT_EQ(res.trail.size(), 3u);
  EXPECT_EQ(res.trail[0], root_);
  EXPECT_EQ(res.trail[1], da_);
  EXPECT_EQ(res.trail[2], db_);
}

TEST_F(ResolveTest, LastComponentMayBeAnyEntity) {
  // Data object as final step: fine.
  EXPECT_TRUE(resolve_from(g_, root_, CompoundName::relative("x")).ok());
  // Activity as final step: also fine (activities are entities).
  Resolution res = resolve_from(g_, root_, CompoundName::relative("p"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, act_);
}

TEST_F(ResolveTest, UnboundNameIsNotFound) {
  Resolution res = resolve_from(g_, root_, CompoundName::relative("ghost"));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(res.entity.valid());
}

TEST_F(ResolveTest, UnboundMidPathIsNotFound) {
  Resolution res =
      resolve_from(g_, root_, CompoundName::relative("a/ghost/f"));
  EXPECT_EQ(res.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(res.steps, 2u);
}

TEST_F(ResolveTest, TraversalThroughNonContextFails) {
  // "x" is a data object: σ(c(x)) ∉ C, so "x/anything" is ⊥E.
  Resolution res = resolve_from(g_, root_, CompoundName::relative("x/y"));
  EXPECT_EQ(res.status.code(), StatusCode::kNotAContext);
}

TEST_F(ResolveTest, TraversalThroughActivityFails) {
  Resolution res = resolve_from(g_, root_, CompoundName::relative("p/y"));
  EXPECT_EQ(res.status.code(), StatusCode::kNotAContext);
}

TEST_F(ResolveTest, StartMustBeContext) {
  Resolution res = resolve_from(g_, file_, CompoundName::relative("a"));
  EXPECT_EQ(res.status.code(), StatusCode::kNotAContext);
}

TEST_F(ResolveTest, ResolveFromExplicitContextValue) {
  Context ctx;
  ctx.bind(Name("r"), root_);
  Resolution res = resolve(g_, ctx, CompoundName::relative("r/a/b"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, db_);
  // With an explicit context value there is no initial context object on
  // the trail; the first trail entry is root_ (after consuming "r").
  ASSERT_GE(res.trail.size(), 1u);
  EXPECT_EQ(res.trail[0], root_);
}

TEST_F(ResolveTest, CycleHitsDepthLimit) {
  // loop: root -> l -> root (cycle via bindings).
  EntityId loop = g_.add_context_object("loop");
  ASSERT_TRUE(g_.bind(root_, Name("l"), loop).is_ok());
  ASSERT_TRUE(g_.bind(loop, Name("l"), root_).is_ok());
  // A long alternating compound name resolves fine below the limit …
  std::vector<Name> names;
  for (int i = 0; i < 10; ++i) names.emplace_back("l");
  EXPECT_TRUE(resolve_from(g_, root_, CompoundName(names)).ok());
  // … and trips DEPTH_EXCEEDED above it.
  ResolveOptions opts;
  opts.max_steps = 5;
  Resolution res = resolve_from(g_, root_, CompoundName(names), opts);
  EXPECT_EQ(res.status.code(), StatusCode::kDepthExceeded);
}

TEST_F(ResolveTest, SameEntityComparison) {
  Resolution a = resolve_from(g_, root_, CompoundName::relative("a/b"));
  Resolution b = resolve_from(g_, root_, CompoundName::relative("a/b"));
  Resolution c = resolve_from(g_, root_, CompoundName::relative("x"));
  Resolution bad = resolve_from(g_, root_, CompoundName::relative("nope"));
  EXPECT_TRUE(a.same_entity(b));
  EXPECT_FALSE(a.same_entity(c));
  EXPECT_FALSE(a.same_entity(bad));
  EXPECT_FALSE(bad.same_entity(bad));  // failures denote nothing
}

TEST_F(ResolveTest, DotAndDotDotAsOrdinaryBindings) {
  // The resolver has no special cases: install the bindings and they work.
  ASSERT_TRUE(g_.bind(da_, Name("."), da_).is_ok());
  ASSERT_TRUE(g_.bind(da_, Name(".."), root_).is_ok());
  Resolution res =
      resolve_from(g_, root_, CompoundName::relative("a/./../a/b"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, db_);
}

TEST_F(ResolveTest, AliasesResolveToSameEntity) {
  // Two names for one entity (hard link): resolution agrees.
  ASSERT_TRUE(g_.bind(root_, Name("alias"), file_).is_ok());
  Resolution direct = resolve_from(g_, root_, CompoundName::relative("a/b/f"));
  Resolution alias = resolve_from(g_, root_, CompoundName::relative("alias"));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(direct.entity, alias.entity);
}

// Property sweep: resolution of a linear chain of depth d takes exactly d
// steps and visits d contexts.
class ChainDepth : public ::testing::TestWithParam<int> {};

TEST_P(ChainDepth, StepsEqualDepth) {
  int depth = GetParam();
  NamingGraph g;
  EntityId root = g.add_context_object("root");
  EntityId current = root;
  std::vector<Name> names;
  for (int i = 0; i < depth; ++i) {
    EntityId next = g.add_context_object("d" + std::to_string(i));
    Name name("c" + std::to_string(i));
    ASSERT_TRUE(g.bind(current, name, next).is_ok());
    names.push_back(name);
    current = next;
  }
  Resolution res = resolve_from(g, root, CompoundName(names));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.entity, current);
  EXPECT_EQ(res.steps, static_cast<std::size_t>(depth));
  EXPECT_EQ(res.trail.size(), static_cast<std::size_t>(depth));
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepth,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64, 200));

}  // namespace
}  // namespace namecoh
