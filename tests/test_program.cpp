// Tests for program images (multi-file executables with embedded names)
// and exec-by-name.
#include <gtest/gtest.h>

#include "os/program.hpp"
#include "workload/tree_gen.hpp"

namespace namecoh {
namespace {

class ProgramTest : public ::testing::Test {
 protected:
  ProgramTest()
      : fs_(graph_), transport_(sim_, net_),
        pm_(graph_, fs_, net_, transport_) {
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    root_ = fs_.make_root("m1-root");
  }

  void SetUp() override {
    // /opt/app: image + segments, some shared via the app's lib dir.
    auto app_dir = fs_.mkdir_p(root_, "opt/app");
    ASSERT_TRUE(app_dir.is_ok());
    app_dir_ = app_dir.value();
    ASSERT_TRUE(
        fs_.create_file_at(app_dir_, "lib/rt.o", "[runtime]").is_ok());
    ASSERT_TRUE(
        fs_.create_file_at(app_dir_, "data/table.bin", "[data]").is_ok());
    auto image = make_program(fs_, app_dir_, Name("app"), "[entry]",
                              {"lib/rt.o", "data/table.bin"});
    ASSERT_TRUE(image.is_ok());
    image_ = image.value();
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  ProcessManager pm_;
  MachineId m1_, m2_;
  EntityId root_, app_dir_, image_;
};

TEST_F(ProgramTest, MakeProgramEmbedsSegments) {
  EXPECT_EQ(graph_.embedded_names(image_).size(), 2u);
  EXPECT_EQ(graph_.data(image_), "[entry]");
  EXPECT_FALSE(
      make_program(fs_, app_dir_, Name("bad"), "", {"/absolute"}).is_ok());
}

TEST_F(ProgramTest, LoadResolvesAllSegments) {
  ProgramLoader loader(graph_);
  LoadedProgram program = loader.load(image_, app_dir_);
  EXPECT_TRUE(program.complete());
  EXPECT_EQ(program.segments.size(), 3u);  // image + 2 segments
  EXPECT_EQ(program.text, "[entry][runtime][data]");
}

TEST_F(ProgramTest, LoadSurvivesRelocation) {
  // Move the whole app to another directory: R(file) still finds the
  // segments.
  auto dest = fs_.mkdir_p(root_, "srv");
  ASSERT_TRUE(dest.is_ok());
  ASSERT_TRUE(
      fs_.move_entry(fs_.resolve_path(
                             FileSystem::make_process_context(root_, root_),
                             "/opt")
                         .entity,
                     Name("app"), dest.value(), Name("app")).is_ok());
  ProgramLoader loader(graph_);
  LoadedProgram program = loader.load(image_, app_dir_);
  EXPECT_TRUE(program.complete());
  EXPECT_EQ(program.text, "[entry][runtime][data]");
}

TEST_F(ProgramTest, LoadInWrongContextFails) {
  // R(activity) from a reader whose cwd is not the app dir: segments miss.
  ProgramLoader loader(graph_);
  Context reader = FileSystem::make_process_context(root_, root_);
  LoadedProgram program = loader.load_in_context(image_, reader);
  EXPECT_FALSE(program.complete());
  // With cwd = app dir it works.
  Context good_reader = FileSystem::make_process_context(root_, app_dir_);
  LoadedProgram good = loader.load_in_context(image_, good_reader);
  EXPECT_TRUE(good.complete());
}

TEST_F(ProgramTest, ExecByNameSpawnsChild) {
  ProcessId parent = pm_.spawn(m1_, "shell", root_, root_);
  auto child = exec_program(pm_, parent, m2_, "/opt/app/app");
  ASSERT_TRUE(child.is_ok());
  EXPECT_TRUE(pm_.alive(child.value()));
  EXPECT_EQ(pm_.info(child.value()).machine, m2_);
  EXPECT_EQ(pm_.info(child.value()).label, "app");
  // Child inherited the parent's root.
  EXPECT_EQ(pm_.root_of(child.value()).value(), root_);
}

TEST_F(ProgramTest, ExecFailsOnIncompleteProgram) {
  // Remove a segment: exec must refuse to spawn.
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId lib = fs_.resolve_path(ctx, "/opt/app/lib").entity;
  ASSERT_TRUE(fs_.unlink(lib, Name("rt.o")).is_ok());
  ProcessId parent = pm_.spawn(m1_, "shell", root_, root_);
  auto child = exec_program(pm_, parent, m2_, "/opt/app/app");
  EXPECT_FALSE(child.is_ok());
  EXPECT_EQ(child.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pm_.process_count(), 1u);  // nothing spawned
}

TEST_F(ProgramTest, ExecPassesArgvAsNames) {
  ASSERT_TRUE(fs_.create_file_at(root_, "job/in.dat", "payload").is_ok());
  ProcessId parent = pm_.spawn(m1_, "shell", root_, root_);
  auto child = exec_program(pm_, parent, m2_, "/opt/app/app",
                            {"/job/in.dat", "/opt/app/lib/rt.o"});
  ASSERT_TRUE(child.is_ok());
  // Args are in the child's inbox, in order, and resolve coherently even
  // under R(receiver) because the child inherited the parent's context.
  ASSERT_EQ(pm_.received_names().size(), 2u);
  EXPECT_EQ(pm_.received_names()[0].path, "/job/in.dat");
  EXPECT_EQ(pm_.received_names()[1].path, "/opt/app/lib/rt.o");
  for (const ReceivedName& arg : pm_.received_names()) {
    EXPECT_EQ(arg.receiver, child.value());
    EXPECT_EQ(arg.sender, parent);
    Resolution got = pm_.resolve_received(arg, ByReceiverRule{});
    Resolution meant = pm_.resolve_internal(parent, arg.path);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.same_entity(meant));
  }
}

TEST_F(ProgramTest, ExecValidation) {
  ProcessId parent = pm_.spawn(m1_, "shell", root_, root_);
  EXPECT_FALSE(exec_program(pm_, parent, m2_, "/no/such/thing").is_ok());
  // Not a file.
  EXPECT_EQ(exec_program(pm_, parent, m2_, "/opt/app").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ProgramTest, SharedLibraryViaScopeSearch) {
  // A segment that lives above the app dir ("site-wide library"): the
  // Algol search climbs to find it.
  ASSERT_TRUE(fs_.create_file_at(root_, "opt/libc.o", "[libc]").is_ok());
  auto image = make_program(fs_, app_dir_, Name("app2"), "[e2]",
                            {"libc.o"});
  ASSERT_TRUE(image.is_ok());
  ProgramLoader loader(graph_);
  LoadedProgram program = loader.load(image.value(), app_dir_);
  // "libc.o" not in /opt/app; found at /opt (parent scope).
  EXPECT_TRUE(program.complete());
  EXPECT_EQ(program.text, "[e2][libc]");
}

}  // namespace
}  // namespace namecoh
