// Tests for the distributed name service: authority (AuthorityMap), server-side
// walking, referrals (with transport-rebased server pids), the client
// resolver, and the TTL cache including its staleness incoherence.
#include <gtest/gtest.h>

#include "ns/name_service.hpp"
#include "fs/file_system.hpp"

namespace namecoh {
namespace {

class NameServiceTest : public ::testing::Test {
 protected:
  NameServiceTest()
      : fs_(graph_), transport_(sim_, net_),
        service_(graph_, net_, transport_, homes_) {
    NetworkId lan = net_.add_network("lan");
    m1_ = net_.add_machine(lan, "m1");
    m2_ = net_.add_machine(lan, "m2");
    m3_ = net_.add_machine(lan, "m3");
    // m1 hosts /local …; m2 hosts a shared tree attached as /shared; the
    // attach point lives on m1, the shared contents are homed on m2.
    root_ = fs_.make_root("m1-root");
    shared_ = fs_.make_root("shared");
  }

  void SetUp() override {
    ASSERT_TRUE(fs_.create_file_at(root_, "local/data.txt", "local").is_ok());
    ASSERT_TRUE(
        fs_.create_file_at(shared_, "proj/readme", "shared readme").is_ok());
    ASSERT_TRUE(fs_.attach(root_, Name("shared"), shared_).is_ok());
    homes_.set_home_subtree(graph_, shared_, m2_);
    homes_.set_home_subtree(graph_, root_, m1_);
    server1_ = service_.add_server(m1_);
    server2_ = service_.add_server(m2_);
  }

  NamingGraph graph_;
  FileSystem fs_;
  Simulator sim_;
  Internetwork net_;
  Transport transport_;
  AuthorityMap homes_;
  NameService service_;
  MachineId m1_, m2_, m3_;
  EntityId root_, shared_;
  EndpointId server1_, server2_;
};

TEST_F(NameServiceTest, AuthorityMapSubtreeAssignment) {
  // Every directory under root_ is homed on m1 except the shared subtree.
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId local_dir = fs_.resolve_path(ctx, "/local").entity;
  EntityId proj_dir = fs_.resolve_path(ctx, "/shared/proj").entity;
  EXPECT_EQ(homes_.home_of(root_).value(), m1_);
  EXPECT_EQ(homes_.home_of(local_dir).value(), m1_);
  EXPECT_EQ(homes_.home_of(shared_).value(), m2_);
  EXPECT_EQ(homes_.home_of(proj_dir).value(), m2_);
  EXPECT_FALSE(homes_.home_of(EntityId(9999)).is_ok());
}

TEST_F(NameServiceTest, AuthorityMapDoesNotOverrideForeignAuthority) {
  // root_ was assigned after shared_; the shared subtree kept m2.
  EXPECT_EQ(homes_.home_of(shared_).value(), m2_);
  EXPECT_TRUE(homes_.has_home(root_));
  EXPECT_GT(homes_.size(), 2u);
}

TEST_F(NameServiceTest, LocalResolutionNoReferral) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result = client.resolve(root_, CompoundName::relative("local/data.txt"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "local");
  EXPECT_EQ(client.snapshot()["referrals_followed"], 0u);
  EXPECT_EQ(client.snapshot()["messages_sent"], 1u);
  EXPECT_EQ(service_.snapshot()["answers"], 1u);
}

TEST_F(NameServiceTest, CrossMachineResolutionViaReferral) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "shared readme");
  // m1's server walked "shared", hit the m2-homed context, referred; the
  // client followed to m2's server.
  EXPECT_EQ(client.snapshot()["referrals_followed"], 1u);
  EXPECT_EQ(client.snapshot()["messages_sent"], 2u);
  EXPECT_EQ(service_.snapshot()["referrals"], 1u);
  EXPECT_EQ(service_.snapshot()["answers"], 1u);
}

TEST_F(NameServiceTest, ReferralFromRemoteClientMachine) {
  // A client on m3 (no authoritative data) still resolves: ... but m3 has
  // no server, so the first hop fails cleanly.
  ResolverClient orphan(graph_, net_, transport_, sim_, service_, m3_, "o");
  auto res = orphan.resolve(root_, CompoundName::relative("local/data.txt"));
  EXPECT_FALSE(res.is_ok());
  EXPECT_EQ(res.code(), StatusCode::kUnreachable);
  // Give m3 a server: now its server refers immediately to m1.
  service_.add_server(m3_);
  ResolverClient client(graph_, net_, transport_, sim_, service_, m3_, "c");
  auto result =
      client.resolve(root_, CompoundName::relative("local/data.txt"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "local");
  EXPECT_EQ(client.snapshot()["referrals_followed"], 1u);
}

TEST_F(NameServiceTest, UnboundNameYieldsError) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result = client.resolve(root_, CompoundName::relative("ghost"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
  EXPECT_EQ(service_.snapshot()["failures"], 1u);
}

TEST_F(NameServiceTest, TraversalThroughFileYieldsError) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result =
      client.resolve(root_, CompoundName::relative("local/data.txt/deeper"));
  EXPECT_FALSE(result.is_ok());
}

TEST_F(NameServiceTest, AbsoluteNamesRejectedClientSide) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  auto result = client.resolve(root_, CompoundName::path("/local"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.snapshot()["messages_sent"], 0u);
}

TEST_F(NameServiceTest, AgreesWithLocalResolver) {
  // Remote resolution must compute the same function as the in-memory
  // resolver — the distributed implementation changes cost, not meaning.
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  for (const char* path :
       {"local", "local/data.txt", "shared", "shared/proj",
        "shared/proj/readme"}) {
    CompoundName name = CompoundName::relative(path);
    Resolution local = resolve_from(graph_, root_, name);
    auto remote = client.resolve(root_, name);
    ASSERT_TRUE(local.ok());
    ASSERT_TRUE(remote.is_ok()) << path;
    EXPECT_EQ(remote.value(), local.entity) << path;
  }
}

TEST_F(NameServiceTest, CacheHitSkipsNetwork) {
  ResolverClientConfig config;
  config.cache_ttl = 1000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName name = CompoundName::relative("shared/proj/readme");
  auto first = client.resolve(root_, name);
  ASSERT_TRUE(first.is_ok());
  std::uint64_t sent_before = client.snapshot()["messages_sent"];
  auto second = client.resolve(root_, name);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(client.snapshot()["messages_sent"], sent_before);  // no new traffic
  EXPECT_EQ(client.snapshot()["cache_hits"], 1u);
  EXPECT_EQ(client.cache_size(), 1u);
}

TEST_F(NameServiceTest, CacheExpiresByTtl) {
  ResolverClientConfig config;
  config.cache_ttl = 50;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  CompoundName name = CompoundName::relative("local/data.txt");
  ASSERT_TRUE(client.resolve(root_, name).is_ok());
  sim_.run_until(sim_.now() + 100);  // let the TTL lapse
  ASSERT_TRUE(client.resolve(root_, name).is_ok());
  EXPECT_EQ(client.snapshot()["cache_hits"], 0u);
  EXPECT_EQ(client.snapshot()["cache_misses"], 2u);
}

TEST_F(NameServiceTest, StaleCacheIsTemporalIncoherence) {
  // The authority rebinds a name; a caching client keeps resolving it to
  // the old entity until the TTL lapses — incoherence with the authority.
  ResolverClientConfig config;
  config.cache_ttl = 1000;
  ResolverClient caching(graph_, net_, transport_, sim_, service_, m1_, "c",
                         config);
  ResolverClient fresh(graph_, net_, transport_, sim_, service_, m1_, "f");
  CompoundName name = CompoundName::relative("local/data.txt");
  auto before = caching.resolve(root_, name);
  ASSERT_TRUE(before.is_ok());

  // Rebind at the authority: replace the file.
  Context ctx = FileSystem::make_process_context(root_, root_);
  EntityId local_dir = fs_.resolve_path(ctx, "/local").entity;
  ASSERT_TRUE(fs_.unlink(local_dir, Name("data.txt")).is_ok());
  ASSERT_TRUE(
      fs_.create_file(local_dir, Name("data.txt"), "new contents").is_ok());

  auto cached = caching.resolve(root_, name);
  auto truth = fresh.resolve(root_, name);
  ASSERT_TRUE(cached.is_ok());
  ASSERT_TRUE(truth.is_ok());
  EXPECT_NE(cached.value(), truth.value());  // stale ≠ authoritative
  EXPECT_EQ(cached.value(), before.value());

  // After expiry the client reconverges.
  sim_.run_until(sim_.now() + 2000);
  auto after = caching.resolve(root_, name);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value(), truth.value());
}

TEST_F(NameServiceTest, ClearCache) {
  ResolverClientConfig config;
  config.cache_ttl = 1000;
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c",
                        config);
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("local")).is_ok());
  EXPECT_EQ(client.cache_size(), 1u);
  client.clear_cache();
  EXPECT_EQ(client.cache_size(), 0u);
}

TEST_F(NameServiceTest, ResolutionLatencyAccumulatesOnSimClock) {
  ResolverClient client(graph_, net_, transport_, sim_, service_, m1_, "c");
  SimTime t0 = sim_.now();
  ASSERT_TRUE(client.resolve(root_, CompoundName::relative("local")).is_ok());
  SimTime local_cost = sim_.now() - t0;
  t0 = sim_.now();
  ASSERT_TRUE(
      client.resolve(root_, CompoundName::relative("shared/proj/readme"))
          .is_ok());
  SimTime remote_cost = sim_.now() - t0;
  EXPECT_GT(local_cost, 0u);
  EXPECT_GT(remote_cost, local_cost);  // referral adds a round trip
}

TEST_F(NameServiceTest, DuplicateServerThrows) {
  EXPECT_THROW(service_.add_server(m1_), PreconditionError);
}

TEST_F(NameServiceTest, ServerOnUnknownMachine) {
  EXPECT_FALSE(service_.server_on(m3_).is_ok());
}

TEST_F(NameServiceTest, RetriesSurviveLossyNetwork) {
  // 40% drop probability; with retries the resolution still completes.
  TransportConfig lossy;
  lossy.drop_probability = 0.4;
  Transport drop_transport(sim_, net_, lossy, /*seed=*/424242);
  NameService lossy_service(graph_, net_, drop_transport, homes_);
  lossy_service.add_server(m1_);
  lossy_service.add_server(m2_);
  ResolverClientConfig config;
  config.retry.retries = 16;
  ResolverClient client(graph_, net_, drop_transport, sim_, lossy_service,
                        m1_, "c", config);
  auto result =
      client.resolve(root_, CompoundName::relative("shared/proj/readme"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(graph_.data(result.value()), "shared readme");
  // Loss actually happened: more messages than the loss-free 2.
  EXPECT_GT(client.snapshot()["messages_sent"], 2u);
}

TEST_F(NameServiceTest, QuiescentAntiEntropySendsNoPushes) {
  // Regression: anti_entropy_tick used to re-push every replicated
  // context's snapshot every round, converged or not — a per-tick
  // snapshot storm that grows with the namespace. A quiescent system must
  // send zero kUpdatePush messages per tick: the one-time sweep on start
  // is suppressed by the per-secondary epoch gate, and later ticks iterate
  // an empty dirty set.
  homes_.set_replicas_subtree(graph_, shared_, {m2_, m3_});
  service_.add_server(m3_);
  service_.publish_update(shared_);
  sim_.run();
  const std::uint64_t pushed = service_.snapshot()["update_pushes"];
  ASSERT_GE(pushed, 1u);
  ASSERT_TRUE(service_.replica_epoch(m3_, shared_).has_value());

  service_.start_anti_entropy(100);
  sim_.run_until(sim_.now() + 5000);  // 50 rounds, nothing rebound
  service_.stop_anti_entropy();
  EXPECT_EQ(service_.snapshot()["update_pushes"], pushed);
  // The suppression is observable, not silent: the start-of-run sweep
  // visited the converged context exactly once.
  EXPECT_EQ(service_.snapshot()["pushes_suppressed"], 1u);
}

TEST_F(NameServiceTest, AntiEntropyIntervalChangeRetimesTheNextTick) {
  // Regression: calling start_anti_entropy while a round was already
  // scheduled left the old tick in the queue, so a shortened interval was
  // ignored until the *previous* interval elapsed once. The re-start must
  // abandon the stale tick (generation stamp) and converge a lagging
  // secondary on the new cadence.
  homes_.set_replicas_subtree(graph_, shared_, {m2_, m3_});
  service_.add_server(m3_);
  service_.publish_update(shared_);
  sim_.run();

  EntityId extra = graph_.add_data_object("extra");
  ASSERT_TRUE(graph_.bind(shared_, Name("extra"), extra).is_ok());
  ASSERT_LT(*service_.replica_epoch(m3_, shared_),
            graph_.rebind_epoch(shared_));

  service_.start_anti_entropy(5000);
  service_.start_anti_entropy(50);  // operator tightens the knob
  sim_.run_until(sim_.now() + 1000);
  EXPECT_EQ(*service_.replica_epoch(m3_, shared_),
            graph_.rebind_epoch(shared_));
}

TEST_F(NameServiceTest, LostMessagesSurfaceAsUnreachable) {
  // With 100% drop, the request never arrives and the client reports the
  // loss instead of hanging.
  TransportConfig lossy;
  lossy.drop_probability = 1.0;
  Transport drop_transport(sim_, net_, lossy);
  NameService lossy_service(graph_, net_, drop_transport, homes_);
  lossy_service.add_server(m1_);
  ResolverClient client(graph_, net_, drop_transport, sim_, lossy_service,
                        m1_, "c");
  auto result = client.resolve(root_, CompoundName::relative("local"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kUnreachable);
}

}  // namespace
}  // namespace namecoh
